// Streaming and batch statistics used throughout the benches and the
// resource-accounting layer (CDFs like Fig. 5a, time series like Fig. 7/9).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/time.hpp"

namespace eslurm {

/// Welford online mean/variance plus min/max.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;     ///< Sample variance (n-1 denominator).
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile of a sample set (linear interpolation between order stats).
/// q in [0, 1].  Returns 0 for an empty sample.
double percentile(std::vector<double> values, double q);

/// Empirical CDF evaluated at the given thresholds: fraction of samples
/// <= threshold.  Used to reproduce the Fig. 5a accuracy CDF.
std::vector<double> empirical_cdf(const std::vector<double>& samples,
                                  const std::vector<double>& thresholds);

/// Fixed-width histogram with overflow/underflow buckets.
///
/// Doubles as a streaming quantile estimator: `quantile(q)` walks the
/// cumulative counts and interpolates linearly inside the matched
/// bucket, clamped to the observed min/max so the tails stay honest even
/// when the samples land in the under/overflow buckets.  O(1) memory per
/// sample stream, O(buckets) per query -- the cheap replacement for
/// sorting every sample just to report a p95.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  std::size_t total() const { return total_; }
  const std::vector<std::size_t>& buckets() const { return counts_; }
  double bucket_low(std::size_t i) const;
  double bucket_high(std::size_t i) const;
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }

  double min() const { return total_ ? min_ : 0.0; }
  double max() const { return total_ ? max_ : 0.0; }
  double sum() const { return sum_; }
  double mean() const { return total_ ? sum_ / static_cast<double>(total_) : 0.0; }

  /// Streaming percentile, q in [0, 1].  Returns 0 for an empty
  /// histogram.  Resolution is one bucket width; values are clamped to
  /// the observed [min, max].
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }

 private:
  double lo_, hi_, width_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0, overflow_ = 0, total_ = 0;
  double min_ = 0.0, max_ = 0.0, sum_ = 0.0;
};

/// Time series of (sim time, value) samples with down-sampled summaries.
/// The resource accountant records one of these per metric per daemon
/// (CPU time, memory, concurrent sockets ...).
class TimeSeries {
 public:
  void record(SimTime t, double value);

  std::size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }
  const std::vector<std::pair<SimTime, double>>& points() const { return points_; }

  double last() const { return points_.empty() ? 0.0 : points_.back().second; }
  double max_value() const;
  double mean_value() const;

  /// Mean of the series interpreted as a step function over [t0, t1]
  /// (each sample holds until the next).  More faithful than the sample
  /// mean when sampling is irregular.
  double time_weighted_mean(SimTime t0, SimTime t1) const;

  /// Max of values recorded at t >= t0 (scans from the end; intended for
  /// recent windows).  Returns 0 for an empty window.
  double max_since(SimTime t0) const;

  /// Down-samples to at most n points (bucket max), for compact reports.
  std::vector<std::pair<SimTime, double>> downsample_max(std::size_t n) const;

 private:
  std::vector<std::pair<SimTime, double>> points_;
};

/// Mean of a vector (0 for empty).
double mean_of(const std::vector<double>& v);

}  // namespace eslurm
