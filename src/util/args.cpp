#include "util/args.hpp"

#include <cstdlib>
#include <sstream>

namespace eslurm {

void ArgParser::add_option(const std::string& name, const std::string& help,
                           const std::string& default_value) {
  declared_[name] = Declaration{help, default_value, false};
  if (!default_value.empty()) values_[name] = default_value;
}

void ArgParser::add_flag(const std::string& name, const std::string& help) {
  declared_[name] = Declaration{help, "", true};
}

bool ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_ = true;
      continue;
    }
    if (arg.rfind("--", 0) == 0) {
      const std::string name = arg.substr(2);
      const auto it = declared_.find(name);
      if (it == declared_.end()) {
        error_ = "unknown option --" + name;
        return false;
      }
      if (it->second.is_flag) {
        flags_set_.insert(name);
      } else {
        if (i + 1 >= argc) {
          error_ = "option --" + name + " needs a value";
          return false;
        }
        values_[name] = argv[++i];
      }
    } else {
      positional_.push_back(arg);
    }
  }
  return true;
}

std::string ArgParser::usage(const std::string& program,
                             const std::string& summary) const {
  std::ostringstream os;
  os << summary << "\n\nusage: " << program << " [options]\n\noptions:\n";
  for (const auto& [name, declaration] : declared_) {
    os << "  --" << name;
    if (!declaration.is_flag) os << " <value>";
    os << "\n      " << declaration.help;
    if (!declaration.default_value.empty())
      os << " (default: " << declaration.default_value << ")";
    os << "\n";
  }
  os << "  --help\n      show this text\n";
  return os.str();
}

std::optional<std::string> ArgParser::get(const std::string& name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string ArgParser::get_or(const std::string& name,
                              const std::string& fallback) const {
  return get(name).value_or(fallback);
}

std::int64_t ArgParser::get_int(const std::string& name, std::int64_t fallback) const {
  const auto value = get(name);
  if (!value) return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(value->c_str(), &end, 10);
  return (end && *end == '\0' && !value->empty()) ? parsed : fallback;
}

double ArgParser::get_double(const std::string& name, double fallback) const {
  const auto value = get(name);
  if (!value) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value->c_str(), &end);
  return (end && *end == '\0' && !value->empty()) ? parsed : fallback;
}

}  // namespace eslurm
