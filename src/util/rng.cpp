#include "util/rng.hpp"

#include <cmath>

namespace eslurm {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream) {
  // Mix the base once so adjacent bases land far apart, fold the stream
  // index in with the golden-ratio increment, then mix again.  Two
  // finalizer passes give full avalanche between (base, stream) pairs.
  std::uint64_t state = base;
  std::uint64_t mixed = splitmix64(state);
  state = mixed ^ ((stream + 1) * 0x9e3779b97f4a7c15ULL);
  return splitmix64(state);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& si : s_) si = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits -> [0,1) with full double precision.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_u64() % span);
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

bool Rng::chance(double p) { return next_double() < p; }

double Rng::exponential(double mean) {
  double u;
  do {
    u = next_double();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  if (has_spare_) {
    has_spare_ = false;
    return mean + stddev * spare_normal_;
  }
  double u1;
  do {
    u1 = next_double();
  } while (u1 <= 0.0);
  const double u2 = next_double();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  spare_normal_ = mag * std::sin(2.0 * M_PI * u2);
  has_spare_ = true;
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

double Rng::lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

double Rng::weibull(double shape, double scale) {
  double u;
  do {
    u = next_double();
  } while (u <= 0.0);
  return scale * std::pow(-std::log(u), 1.0 / shape);
}

std::size_t Rng::zipf(std::size_t n, double s) {
  if (n == 0) return 0;
  // Inverse-CDF over the (small) harmonic table would cost O(n) per draw;
  // use rejection-free cumulative search on demand for modest n, or the
  // approximation for large n.  Workload generation uses n <= a few
  // thousand, so a direct cumulative walk is fine and exact.
  double h = 0.0;
  for (std::size_t i = 1; i <= n; ++i) h += 1.0 / std::pow(static_cast<double>(i), s);
  double u = next_double() * h;
  double acc = 0.0;
  for (std::size_t i = 1; i <= n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i), s);
    if (u <= acc) return i - 1;
  }
  return n - 1;
}

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace eslurm
