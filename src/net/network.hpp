// Simulated cluster interconnect.
//
// Models the properties that matter for RM-communication scalability:
//   * per-link latency + serialization (bytes / bandwidth) + jitter;
//   * per-node *send* and *receive* serialization: a node handles one
//     message at a time, so a master that fans out to 20K slaves pays the
//     fan-out serially while a tree spreads it over the relay nodes --
//     this is the first-order effect behind Fig. 7/8/9 of the paper;
//   * TCP-connection (socket) accounting per node, sampled as a time
//     series for the nodes under observation (master / satellites);
//   * delivery to a failed node: the sender only learns about it after a
//     configurable timeout, exactly like a TCP connect/send timing out.
//
// Reliability semantics: send() invokes `on_complete(true)` once the
// receiver has accepted and processed the message (ack included), or
// `on_complete(false)` after `timeout` when the receiver is dead (or dies
// before processing).  By default there is no packet loss between live
// nodes; HPC interconnects are lossless at this abstraction level.  An
// optional ChaosInjector (set_chaos) changes that: it can drop, duplicate
// or delay individual message/ack legs and cut timed partitions -- see
// net/chaos.hpp.  A dropped ack means the receiver processed the message
// but the sender still observes a failure, which is exactly the ambiguity
// the reliable transport (net/transport.hpp) resolves with dedup windows.
#pragma once

#include <functional>
#include <vector>

#include "net/message.hpp"
#include "net/topology.hpp"
#include "sim/engine.hpp"
#include "util/pool.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/time.hpp"

namespace eslurm::telemetry {
class Counter;
}  // namespace eslurm::telemetry

namespace eslurm::net {

class ChaosInjector;

struct LinkModel {
  SimTime base_latency = microseconds(25);       ///< propagation + stack
  double bandwidth_bytes_per_sec = 3.125e9;      ///< 25 Gbps link
  SimTime connection_setup = microseconds(60);   ///< TCP handshake cost
  SimTime recv_processing = microseconds(15);    ///< per-message receiver CPU
  SimTime send_processing = microseconds(10);    ///< per-message sender CPU
  double jitter_frac = 0.10;                     ///< multiplicative jitter on latency
  SimTime default_timeout = seconds(1);          ///< dead-peer detection
};

/// Invoked when a message is delivered to a node (after receive
/// serialization).  Handlers are registered per (node, message type).
using Handler = std::function<void(const Message&)>;

/// Completion callback of a send: ok=true means processed by the peer.
using SendCallback = std::function<void(bool ok)>;

class Network {
 public:
  Network(sim::Engine& engine, std::size_t node_count, LinkModel model, Rng rng);

  sim::Engine& engine() { return engine_; }
  const LinkModel& link_model() const { return model_; }
  std::size_t node_count() const { return nodes_.size(); }

  /// The liveness oracle (normally Cluster::alive).  Defaults to all-up.
  void set_liveness(std::function<bool(NodeId)> alive);

  /// Attaches an interconnect topology: propagation latency then depends
  /// on the endpoints' rack/group relationship instead of the flat
  /// base_latency.  The pointer must outlive the network; nullptr
  /// restores the flat model.
  void set_topology(const Topology* topology) { topology_ = topology; }
  const Topology* topology() const { return topology_; }

  /// Attaches a chaos injector: every message and ack leg consults it for
  /// drop/duplicate/delay/partition verdicts.  The injector must outlive
  /// the network; nullptr restores lossless behaviour.
  void set_chaos(ChaosInjector* chaos) { chaos_ = chaos; }
  ChaosInjector* chaos() const { return chaos_; }

  /// Registers/replaces the handler for one message type on one node.
  void register_handler(NodeId node, MessageType type, Handler handler);
  void unregister_handler(NodeId node, MessageType type);

  /// Allocates a contiguous private message-type range of `width` types
  /// (communication structures use this).  The allocator is per-network
  /// state -- not process-wide -- so identical worlds built in the same
  /// process (sequentially or on concurrent sweep threads) assign
  /// identical type numbers in construction order.
  MessageType alloc_message_types(int width) {
    const MessageType base = next_dynamic_type_;
    next_dynamic_type_ += width;
    return base;
  }

  /// Per-node receive-processing override (0 = use the link model's
  /// default).  A centralized RM master pays a full RPC-handling cost
  /// (global locks, protocol work) per inbound message -- the first-order
  /// reason it saturates at scale.
  void set_recv_processing(NodeId node, SimTime per_message);
  SimTime recv_processing(NodeId node) const;

  /// Sends a message.  `timeout` <= 0 uses the model default.  The
  /// callback may be empty for fire-and-forget traffic.
  void send(NodeId from, NodeId to, Message msg, SimTime timeout = 0,
            SendCallback on_complete = {});

  /// --- socket / traffic accounting -------------------------------------
  int open_sockets(NodeId node) const { return nodes_[node].open_sockets; }

  /// Starts recording this node's concurrent-socket count as a time
  /// series (one point per change).  Only watched nodes pay the memory.
  void watch_sockets(NodeId node);
  const TimeSeries& socket_series(NodeId node) const;

  std::uint64_t total_messages() const { return total_messages_; }
  std::uint64_t total_bytes() const { return total_bytes_; }
  std::uint64_t failed_sends() const { return failed_sends_; }

  /// Sends whose exchange (message legs + ack/timeout) is still pending.
  std::size_t in_flight_sends() const { return send_ops_.in_use(); }
  /// High-water mark of concurrently pending sends; pool slots are
  /// recycled, so steady-state traffic allocates nothing once this
  /// plateaus.
  std::size_t send_op_pool_capacity() const { return send_ops_.capacity(); }

  /// Messages processed by a given node (receive side); used to charge
  /// daemon CPU time in the RM resource accountant.
  std::uint64_t messages_received(NodeId node) const { return nodes_[node].received; }
  std::uint64_t messages_sent(NodeId node) const { return nodes_[node].sent; }

 private:
  struct NodeState {
    SimTime send_busy_until = 0;
    SimTime recv_busy_until = 0;
    SimTime recv_processing_override = 0;
    int open_sockets = 0;
    std::uint64_t sent = 0;
    std::uint64_t received = 0;
    bool watched = false;
    TimeSeries socket_ts;
  };

  /// One in-flight send().  Every engine leg of the exchange -- arrival,
  /// delivery, duplicate copy, ack, timeout -- shares this pooled record
  /// and captures only {this, op-index}, so event captures stay inline
  /// and a send's message is stored exactly once.  `refs` counts the
  /// primary completion chain plus an optional duplicate-delivery leg;
  /// ops are never cancelled and every pending leg holds a reference, so
  /// no generation tag is needed.
  struct SendOp {
    Message msg;
    SendCallback on_complete;
    SimTime deadline = 0;
    NodeId from = kNoNode;
    NodeId to = kNoNode;
    bool duplicate = false;
    std::uint32_t refs = 0;
  };

  bool alive(NodeId node) const { return alive_ ? alive_(node) : true; }
  void adjust_sockets(NodeId node, int delta);
  SimTime jittered(SimTime t);

  SimTime propagation(NodeId from, NodeId to) const;

  /// Resolves the exchange as lost: sockets hold until the sender's
  /// deadline, then the callback observes failure (shared by dead-peer,
  /// chaos-drop and lost-ack paths).
  void fail_at_deadline(std::uint32_t op);
  /// Wire arrival: liveness check + receive serialization.
  void arrival_step(std::uint32_t op);
  /// Receive done: handler dispatch, duplicate leg, ack leg.
  void deliver_step(std::uint32_t op);
  void deliver_duplicate(std::uint32_t op);
  /// Closes the exchange's sockets and invokes the completion callback.
  void complete(std::uint32_t op, bool ok);
  void release_op(std::uint32_t op);
  void dispatch(NodeId to, const Message& msg, bool duplicate);

  sim::Engine& engine_;
  LinkModel model_;
  Rng rng_;
  std::function<bool(NodeId)> alive_;
  const Topology* topology_ = nullptr;
  ChaosInjector* chaos_ = nullptr;
  std::vector<NodeState> nodes_;
  /// Type-major handler tables: handlers_by_type_[type][node].  Rows are
  /// created lazily on first registration of a type and sized to the node
  /// count, so delivery is two vector indexes -- no hashing, no per-node
  /// map churn.  Message types are small dense integers (see
  /// net/message.hpp), which is what makes type-major flat tables cheap.
  std::vector<std::vector<Handler>> handlers_by_type_;
  /// Recycled send records; deque-backed so references stay stable while
  /// handlers send reentrantly (which may grow the pool).
  util::SlabPool<SendOp, /*StableStorage=*/true> send_ops_;
  MessageType next_dynamic_type_ = kDynamicTypeBase;
  std::uint64_t next_msg_id_ = 1;
  std::uint64_t total_messages_ = 0;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t failed_sends_ = 0;

  // Cached telemetry instruments (null when telemetry is off); they
  // mirror the struct-field stats so esprof sees the traffic volume.
  telemetry::Counter* messages_counter_ = nullptr;
  telemetry::Counter* bytes_counter_ = nullptr;
  telemetry::Counter* failed_counter_ = nullptr;
  telemetry::Counter* delivered_counter_ = nullptr;
};

}  // namespace eslurm::net
