// Message and node-id types shared by the network, communication
// structures and RM daemons.
#pragma once

#include <any>
#include <cstdint>

namespace eslurm::net {

/// Dense node index; node 0..n-1 are cluster members.  The RM layer
/// assigns roles (master / satellite / compute) on top of these ids.
using NodeId = std::uint32_t;
inline constexpr NodeId kNoNode = UINT32_MAX;

/// Application-level message tag.  Ranges are reserved per subsystem so
/// multiple protocols can coexist on one node's inbox:
///   0-99    network internal
///   100-199 communication structures (comm)
///   200-299 resource-manager control traffic (rm)
///   300-399 user-facing RPC front-end (frontend)
using MessageType = int;

/// First type of the dynamically-allocated range handed out by
/// Network::alloc_message_types (the comm structures' 100-199 block).
inline constexpr MessageType kDynamicTypeBase = 100;

struct Message {
  MessageType type = 0;
  std::uint64_t id = 0;      ///< unique per send, assigned by the network
  NodeId src = kNoNode;
  std::size_t bytes = 256;   ///< serialized size driving the link model
  std::any payload;          ///< typed body, owned by the message

  template <typename T>
  const T& body() const { return std::any_cast<const T&>(payload); }
};

}  // namespace eslurm::net
