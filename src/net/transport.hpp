// At-least-once reliable channel layered on Network::send.
//
// Network::send gives a single attempt with an ambiguous failure: a
// `false` completion means "no ack before the deadline", which covers a
// dead peer, a dropped message, *and* a dropped ack (where the receiver
// actually processed the message).  The ReliableTransport turns that into
// a usable contract for RM control traffic:
//
//   * sender side: every logical message carries a per-channel sequence
//     number and is retransmitted on failure with exponential backoff +
//     jitter, up to a retry cap; only after the cap is exhausted does the
//     caller observe a permanent failure (so transient loss is absorbed,
//     while a genuinely dead satellite still surfaces as one).
//   * receiver side: handlers registered through the transport sit behind
//     a bounded dedup window keyed by (sender, channel, seq), so a
//     retransmit-after-lost-ack or a chaos-duplicated frame is acked but
//     not re-processed -- job-load, job-terminate and heartbeat messages
//     become idempotent.
//
// The result is at-least-once delivery on the wire, exactly-once
// processing at the handler (within the dedup window).  With no chaos
// injector attached the first attempt always succeeds, no retransmit
// timers fire and no extra rng draws happen, so existing runs stay
// bit-identical when a subsystem migrates onto the transport.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "net/network.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace eslurm::telemetry {
class Counter;
}  // namespace eslurm::telemetry

namespace eslurm::net {

struct TransportOptions {
  SimTime rto_initial = milliseconds(500);  ///< first retransmit timeout
  double backoff_factor = 2.0;              ///< rto *= factor per attempt
  SimTime rto_max = seconds(8);             ///< backoff ceiling
  double jitter_frac = 0.25;                ///< +/- fraction on each rto
  int max_retries = 6;                      ///< retransmits after attempt 1
  std::size_t dedup_window = 128;           ///< seqs remembered per channel
  /// Extra bytes the reliability header adds to each frame.  Defaults to
  /// 0 so migrating a subsystem onto the transport does not perturb the
  /// link-model timing of existing (chaos-free) experiments.
  std::size_t header_bytes = 0;
};

/// Upper bound on one reliable send's duration before it reports a
/// permanent failure: every attempt timing out plus the full
/// (jitter-inflated) backoff schedule.  Watchdogs layered above the
/// transport (tree completion, RM subtask) size themselves with this so
/// they do not fire while the transport is still legitimately retrying.
SimTime worst_case_send_time(const TransportOptions& options,
                             SimTime per_attempt_timeout);

/// Reliable sender/receiver endpoint pair multiplexed over one Network.
/// One instance serves many (from, to, type) channels; subsystems
/// typically own one transport and route all their control traffic
/// through it.
class ReliableTransport {
 public:
  /// `name` labels this transport's telemetry counters so several
  /// instances (rm, frontend, a test) stay distinguishable.
  ReliableTransport(Network& network, Rng rng, TransportOptions options = {},
                    std::string name = "transport");
  ~ReliableTransport();

  ReliableTransport(const ReliableTransport&) = delete;
  ReliableTransport& operator=(const ReliableTransport&) = delete;

  Network& network() { return network_; }
  const TransportOptions& options() const { return options_; }

  /// Reliable counterpart of Network::send: retransmits on failure until
  /// the retry cap, then reports `ok=false` (permanent failure).
  /// `timeout` <= 0 uses the link-model default and bounds each attempt,
  /// not the whole exchange.
  void send(NodeId from, NodeId to, Message msg, SimTime timeout = 0,
            SendCallback on_complete = {});

  /// Registers `handler` for `type` on `node`, behind the dedup window.
  /// Frames arriving through this transport are unwrapped, deduplicated
  /// and handed to the handler with the original payload (msg.src / type
  /// preserved; msg.id is the network id of the delivering frame).
  void register_handler(NodeId node, MessageType type, Handler handler);
  void unregister_handler(NodeId node, MessageType type);

  std::uint64_t sends() const { return sends_; }
  std::uint64_t retransmits() const { return retransmits_; }
  std::uint64_t permanent_failures() const { return permanent_failures_; }
  std::uint64_t duplicates_suppressed() const { return duplicates_suppressed_; }
  /// Frames that arrived with a sequence number at or below the highest
  /// seq already evicted from their channel's dedup window.  Such a frame
  /// is *processed* (the window no longer remembers it), so a nonzero
  /// count means a sufficiently delayed retransmit -- e.g. released by a
  /// long partition after > dedup_window newer messages -- was NOT
  /// deduplicated.  The exactly-once guarantee is bounded by the window;
  /// this counter makes the boundary observable instead of silent.
  std::uint64_t dedup_window_wraps() const { return dedup_window_wraps_; }

  /// Reliability header: the logical sequence number on its channel.
  /// `channel` disambiguates (from, type) streams at one receiver; the
  /// sender id comes from msg.src.  Public so tests can forge delayed
  /// frames when provoking dedup-window wrap.
  struct Envelope {
    std::uint64_t seq = 0;
    std::any inner;  ///< the caller's original payload
  };

 private:
  /// Bounded remembered-seq set per (receiver, sender, type): O(1)
  /// membership plus FIFO eviction once `dedup_window` entries exist.
  /// `evicted_max` tracks the highest seq ever evicted, so a late frame
  /// older than the window's memory is detectable (see
  /// dedup_window_wraps()).
  struct DedupWindow {
    std::unordered_set<std::uint64_t> seen;
    std::deque<std::uint64_t> order;
    std::uint64_t evicted_max = 0;
    bool evicted_any = false;
  };

  struct PendingSend;

  void attempt(std::shared_ptr<PendingSend> pending);
  SimTime backoff_delay(int attempt);

  Network& network_;
  Rng rng_;
  TransportOptions options_;
  std::string name_;

  std::unordered_map<std::uint64_t, std::uint64_t> next_seq_;  ///< channel -> seq
  std::unordered_map<std::uint64_t, DedupWindow> windows_;     ///< channel -> window
  std::vector<std::pair<NodeId, MessageType>> registered_;

  std::uint64_t sends_ = 0;
  std::uint64_t retransmits_ = 0;
  std::uint64_t permanent_failures_ = 0;
  std::uint64_t duplicates_suppressed_ = 0;
  std::uint64_t dedup_window_wraps_ = 0;

  telemetry::Counter* sends_counter_ = nullptr;
  telemetry::Counter* retransmits_counter_ = nullptr;
  telemetry::Counter* failures_counter_ = nullptr;
  telemetry::Counter* duplicates_counter_ = nullptr;
  telemetry::Counter* wraps_counter_ = nullptr;
};

}  // namespace eslurm::net
