// Interconnect topology model.
//
// Tianhe-class machines are built from racks (frames) of nodes joined by
// a fat-tree of switches; messages inside a rack are cheaper than
// messages that cross racks.  Section IV-E of the paper notes that
// communication trees are often constructed *topology-aware* first and
// only fine-tuned by the FP-Tree constructor, preserving locality; this
// module provides the topology substrate for that composition.
#pragma once

#include <vector>

#include "net/message.hpp"
#include "util/time.hpp"

namespace eslurm::net {

struct TopologyConfig {
  std::size_t nodes_per_rack = 32;
  std::size_t racks_per_group = 8;       ///< racks behind one switch group
  SimTime intra_rack_latency = microseconds(5);
  SimTime inter_rack_latency = microseconds(25);
  SimTime inter_group_latency = microseconds(60);
};

class Topology {
 public:
  Topology(std::size_t node_count, TopologyConfig config = {});

  std::size_t node_count() const { return node_count_; }
  const TopologyConfig& config() const { return config_; }

  std::size_t rack_of(NodeId node) const;
  std::size_t group_of(NodeId node) const;
  std::size_t rack_count() const;

  /// Propagation latency between two nodes (0 hops for self).
  SimTime latency(NodeId a, NodeId b) const;

  /// Stable-sorts a node list by (group, rack): the canonical
  /// topology-aware ordering, which makes contiguous tree subtrees align
  /// with racks so most relay hops stay rack-local.
  std::vector<NodeId> topology_order(std::vector<NodeId> list) const;

 private:
  std::size_t node_count_;
  TopologyConfig config_;
};

}  // namespace eslurm::net
