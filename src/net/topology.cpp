#include "net/topology.hpp"

#include <algorithm>
#include <stdexcept>

namespace eslurm::net {

Topology::Topology(std::size_t node_count, TopologyConfig config)
    : node_count_(node_count), config_(config) {
  if (config_.nodes_per_rack == 0 || config_.racks_per_group == 0)
    throw std::invalid_argument("Topology: rack/group sizes must be positive");
}

std::size_t Topology::rack_of(NodeId node) const {
  return node / config_.nodes_per_rack;
}

std::size_t Topology::group_of(NodeId node) const {
  return rack_of(node) / config_.racks_per_group;
}

std::size_t Topology::rack_count() const {
  return (node_count_ + config_.nodes_per_rack - 1) / config_.nodes_per_rack;
}

SimTime Topology::latency(NodeId a, NodeId b) const {
  if (a == b) return 0;
  if (rack_of(a) == rack_of(b)) return config_.intra_rack_latency;
  if (group_of(a) == group_of(b)) return config_.inter_rack_latency;
  return config_.inter_group_latency;
}

std::vector<NodeId> Topology::topology_order(std::vector<NodeId> list) const {
  std::stable_sort(list.begin(), list.end(), [this](NodeId a, NodeId b) {
    const auto ka = std::make_pair(group_of(a), rack_of(a));
    const auto kb = std::make_pair(group_of(b), rack_of(b));
    return ka < kb;
  });
  return list;
}

}  // namespace eslurm::net
