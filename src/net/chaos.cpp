#include "net/chaos.hpp"

#include <algorithm>
#include <utility>

#include "telemetry/telemetry.hpp"

namespace eslurm::net {

ChaosInjector::ChaosInjector(sim::Engine& engine, std::size_t node_count,
                             Rng rng)
    : engine_(engine), node_count_(node_count), rng_(std::move(rng)) {
  if (auto* t = engine_.telemetry()) {
    dropped_counter_ = &t->metrics.counter("net.chaos.dropped");
    duplicated_counter_ = &t->metrics.counter("net.chaos.duplicated");
    delayed_counter_ = &t->metrics.counter("net.chaos.delayed");
    partitioned_counter_ = &t->metrics.counter("net.chaos.partitioned");
  }
}

void ChaosInjector::set_plan(ChaosPlan plan) {
  plan_ = std::move(plan);
  partitions_.clear();
  for (std::size_t i = 0; i < plan_.phases.size(); ++i) {
    const ChaosPhase& phase = plan_.phases[i];
    if (!phase.has_partition()) continue;
    CompiledPhase compiled;
    compiled.phase_index = i;
    compiled.side.assign(node_count_, 0);
    for (NodeId node : phase.partition_a) {
      if (node < node_count_) compiled.side[node] = 1;
    }
    for (NodeId node : phase.partition_b) {
      if (node < node_count_) compiled.side[node] = 2;
    }
    partitions_.push_back(std::move(compiled));
  }
  if (auto* t = engine_.telemetry()) {
    for (const SimTime at : plan_.master_kills)
      t->tracer.instant("chaos-master-kill", "net",
                        {{"at_s", to_seconds(at)}});
    for (std::size_t i = 0; i < plan_.phases.size(); ++i) {
      const ChaosPhase& phase = plan_.phases[i];
      t->tracer.instant(
          "chaos-phase", "net",
          {{"phase", static_cast<double>(i)},
           {"start_s", to_seconds(phase.start)},
           {"duration_s", phase.duration <= 0 ? -1.0
                                              : to_seconds(phase.duration)},
           {"drop_prob", phase.drop_prob},
           {"duplicate_prob", phase.duplicate_prob},
           {"delay_spike_prob", phase.delay_spike_prob},
           {"partition", phase.has_partition() ? 1.0 : 0.0}});
    }
  }
}

ChaosInjector::Decision ChaosInjector::decide(NodeId from, NodeId to) {
  Decision decision;
  if (plan_.empty()) return decision;
  const SimTime now = engine_.now();

  // An active partition cuts the link outright; no probability draw, so
  // the rng stream stays identical whether or not a partition phase is
  // configured for disjoint node sets.
  for (const CompiledPhase& compiled : partitions_) {
    const ChaosPhase& phase = plan_.phases[compiled.phase_index];
    if (!phase.active_at(now)) continue;
    const std::uint8_t side_from =
        from < node_count_ ? compiled.side[from] : 0;
    const std::uint8_t side_to = to < node_count_ ? compiled.side[to] : 0;
    if (side_from != 0 && side_to != 0 && side_from != side_to) {
      ++decisions_;
      ++dropped_;
      ++partitioned_;
      decision.drop = true;
      decision.partitioned = true;
      if (dropped_counter_) dropped_counter_->inc();
      if (partitioned_counter_) partitioned_counter_->inc();
      if (auto* t = engine_.telemetry()) {
        t->tracer.instant("chaos-partition-drop", "net",
                          {{"from", static_cast<double>(from)},
                           {"to", static_cast<double>(to)}});
      }
      return decision;
    }
  }

  for (const ChaosPhase& phase : plan_.phases) {
    if (!phase.active_at(now)) continue;
    if (phase.drop_prob <= 0.0 && phase.duplicate_prob <= 0.0 &&
        phase.delay_spike_prob <= 0.0) {
      continue;
    }
    ++decisions_;
    if (phase.drop_prob > 0.0 && rng_.chance(phase.drop_prob)) {
      ++dropped_;
      decision.drop = true;
      if (dropped_counter_) dropped_counter_->inc();
      if (auto* t = engine_.telemetry()) {
        t->tracer.instant("chaos-drop", "net",
                          {{"from", static_cast<double>(from)},
                           {"to", static_cast<double>(to)}});
      }
      // A dropped message cannot also be duplicated or delayed; return
      // without further draws so each phase costs at most one hit.
      return decision;
    }
    if (phase.duplicate_prob > 0.0 && rng_.chance(phase.duplicate_prob)) {
      ++duplicated_;
      decision.duplicate = true;
      if (duplicated_counter_) duplicated_counter_->inc();
    }
    if (phase.delay_spike_prob > 0.0 && rng_.chance(phase.delay_spike_prob)) {
      ++delayed_;
      const double mean = static_cast<double>(phase.delay_spike_mean);
      decision.extra_delay +=
          static_cast<SimTime>(std::max(0.0, rng_.exponential(mean)));
      if (delayed_counter_) delayed_counter_->inc();
    }
  }
  return decision;
}

}  // namespace eslurm::net
