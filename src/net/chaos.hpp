// Network chaos injection: deterministic, Rng-seeded fault plans hooked
// into Network::send.
//
// The paper exercises ESLURM's recovery machinery (Fig. 2 satellite state
// machine, FP-Tree adoption, master takeover) only under whole-node
// crashes.  Real large systems mostly misbehave *between* crashes:
// messages are lost, delayed by congestion spikes, duplicated by
// retransmitting middleboxes, and whole tiers get partitioned by switch
// or routing faults.  The ChaosInjector models exactly those four faults
// as a per-send decision consulted by Network::send:
//
//   * drop        -- the message vanishes in flight; the sender only
//                    learns at its timeout (same surface as a dead peer);
//   * duplicate   -- the receiver processes the message twice;
//   * delay spike -- an exponential extra latency is added to the wire;
//   * partition   -- a timed bidirectional cut between two node sets
//                    (e.g. master <-> satellite tier): every crossing
//                    message is dropped while the phase is active.
//
// Faults are described by a ChaosPlan: a list of phases with a start and
// duration (mirroring FailureModel::schedule_burst), each carrying its
// own probabilities and optional partition.  An open-ended phase
// (duration <= 0) models ambient flakiness for the whole run.
//
// Determinism: the injector owns its own Rng, so enabling chaos never
// perturbs the network's jitter stream, and identical seeds produce
// bit-identical fault schedules -- including across sweep threads, since
// each world owns its own injector.
#pragma once

#include <cstdint>
#include <vector>

#include "net/message.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace eslurm::telemetry {
class Counter;
}  // namespace eslurm::telemetry

namespace eslurm::net {

/// One window of misbehaviour.  Probabilities are per message crossing
/// the network while the phase is active; a phase with both partition
/// sets non-empty additionally cuts every message between the sets.
struct ChaosPhase {
  SimTime start = 0;
  SimTime duration = 0;  ///< <= 0 means open-ended (active until the end)
  double drop_prob = 0.0;
  double duplicate_prob = 0.0;
  double delay_spike_prob = 0.0;
  SimTime delay_spike_mean = milliseconds(250);  ///< exponential spike size
  std::vector<NodeId> partition_a;
  std::vector<NodeId> partition_b;

  bool active_at(SimTime now) const {
    return now >= start && (duration <= 0 || now < start + duration);
  }
  bool has_partition() const {
    return !partition_a.empty() && !partition_b.empty();
  }
};

/// Schedule of fault phases, built by the experiment (or a bench) before
/// the run starts.
struct ChaosPlan {
  std::vector<ChaosPhase> phases;
  /// Whole-process master kills ("crash at the worst moment"): at each
  /// listed time the experiment invokes the RM's inject_master_crash().
  /// Unlike message faults these are not per-send decisions, so the
  /// Experiment -- not the injector -- schedules them.
  std::vector<SimTime> master_kills;

  bool empty() const { return phases.empty() && master_kills.empty(); }

  /// Kills the RM master at `at` (repeatable for multiple crashes).
  ChaosPlan& kill_master(SimTime at) {
    master_kills.push_back(at);
    return *this;
  }

  /// Ambient flakiness for the whole run (open-ended phase at t=0).
  ChaosPhase& ambient(double drop, double duplicate = 0.0,
                      double delay_spike = 0.0,
                      SimTime delay_mean = milliseconds(250)) {
    ChaosPhase phase;
    phase.drop_prob = drop;
    phase.duplicate_prob = duplicate;
    phase.delay_spike_prob = delay_spike;
    phase.delay_spike_mean = delay_mean;
    phases.push_back(std::move(phase));
    return phases.back();
  }

  /// Timed bidirectional partition between two node sets.
  ChaosPhase& partition(SimTime start, SimTime duration, std::vector<NodeId> a,
                        std::vector<NodeId> b) {
    ChaosPhase phase;
    phase.start = start;
    phase.duration = duration;
    phase.partition_a = std::move(a);
    phase.partition_b = std::move(b);
    phases.push_back(std::move(phase));
    return phases.back();
  }
};

/// Scalar, config-file-friendly description of a chaos setup; the
/// Experiment compiles it into a ChaosPlan (ambient phase + one optional
/// master<->satellite-tier partition).  `any()` gates construction so a
/// default config pays nothing.
struct ChaosParams {
  double drop_prob = 0.0;
  double duplicate_prob = 0.0;
  double delay_spike_prob = 0.0;
  double delay_spike_ms = 250.0;
  double partition_start_s = -1.0;  ///< < 0 disables the partition phase
  double partition_duration_s = 0.0;
  double master_kill_s = -1.0;      ///< < 0 disables the master kill

  bool any() const {
    return drop_prob > 0.0 || duplicate_prob > 0.0 || delay_spike_prob > 0.0 ||
           (partition_start_s >= 0.0 && partition_duration_s > 0.0) ||
           master_kill_s >= 0.0;
  }
};

class ChaosInjector {
 public:
  /// `node_count` sizes the per-phase partition-side tables.
  ChaosInjector(sim::Engine& engine, std::size_t node_count, Rng rng);

  /// Installs the fault schedule (replacing any previous plan) and emits
  /// a tracer instant per phase boundary so runs are inspectable in the
  /// trace viewer.
  void set_plan(ChaosPlan plan);
  const ChaosPlan& plan() const { return plan_; }

  /// The network's verdict for one message (or ack) leg from -> to.
  struct Decision {
    bool drop = false;        ///< message vanishes; sender times out
    bool partitioned = false; ///< drop caused by an active partition
    bool duplicate = false;   ///< receiver processes the message twice
    SimTime extra_delay = 0;  ///< delay spike added to the wire latency
  };
  Decision decide(NodeId from, NodeId to);

  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t duplicated() const { return duplicated_; }
  std::uint64_t delayed() const { return delayed_; }
  std::uint64_t partitioned() const { return partitioned_; }
  std::uint64_t decisions() const { return decisions_; }

 private:
  /// 0 = not in the partition, 1 = side A, 2 = side B.
  struct CompiledPhase {
    std::size_t phase_index = 0;
    std::vector<std::uint8_t> side;
  };

  sim::Engine& engine_;
  std::size_t node_count_;
  Rng rng_;
  ChaosPlan plan_;
  std::vector<CompiledPhase> partitions_;

  std::uint64_t dropped_ = 0;
  std::uint64_t duplicated_ = 0;
  std::uint64_t delayed_ = 0;
  std::uint64_t partitioned_ = 0;
  std::uint64_t decisions_ = 0;

  // Cached instruments (null when telemetry is off) keep the per-send
  // cost at a pointer check, like sim::Engine's event counters.
  telemetry::Counter* dropped_counter_ = nullptr;
  telemetry::Counter* duplicated_counter_ = nullptr;
  telemetry::Counter* delayed_counter_ = nullptr;
  telemetry::Counter* partitioned_counter_ = nullptr;
};

}  // namespace eslurm::net
