#include "net/network.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "net/chaos.hpp"
#include "telemetry/telemetry.hpp"
#include "util/log.hpp"

namespace eslurm::net {

Network::Network(sim::Engine& engine, std::size_t node_count, LinkModel model, Rng rng)
    : engine_(engine), model_(model), rng_(rng), nodes_(node_count) {
  if (auto* t = engine_.telemetry()) {
    messages_counter_ = &t->metrics.counter("net.messages_total");
    bytes_counter_ = &t->metrics.counter("net.bytes_total");
    failed_counter_ = &t->metrics.counter("net.failed_sends");
    delivered_counter_ = &t->metrics.counter("net.messages_delivered");
  }
}

void Network::set_liveness(std::function<bool(NodeId)> alive) { alive_ = std::move(alive); }

void Network::set_recv_processing(NodeId node, SimTime per_message) {
  nodes_.at(node).recv_processing_override = per_message;
}

SimTime Network::recv_processing(NodeId node) const {
  const SimTime override_value = nodes_.at(node).recv_processing_override;
  return override_value > 0 ? override_value : model_.recv_processing;
}

void Network::register_handler(NodeId node, MessageType type, Handler handler) {
  if (node >= nodes_.size() || type < 0)
    throw std::out_of_range("Network::register_handler: bad node or type");
  if (static_cast<std::size_t>(type) >= handlers_by_type_.size())
    handlers_by_type_.resize(static_cast<std::size_t>(type) + 1);
  auto& row = handlers_by_type_[static_cast<std::size_t>(type)];
  if (row.empty()) row.resize(nodes_.size());
  row[node] = std::move(handler);
}

void Network::unregister_handler(NodeId node, MessageType type) {
  if (node >= nodes_.size() || type < 0)
    throw std::out_of_range("Network::unregister_handler: bad node or type");
  if (static_cast<std::size_t>(type) >= handlers_by_type_.size()) return;
  auto& row = handlers_by_type_[static_cast<std::size_t>(type)];
  if (!row.empty()) row[node] = nullptr;
}

SimTime Network::propagation(NodeId from, NodeId to) const {
  if (!topology_) return model_.base_latency;
  // The topology supplies hop latency; the stack cost stays flat.
  return topology_->latency(from, to) + model_.base_latency / 2;
}

SimTime Network::jittered(SimTime t) {
  return static_cast<SimTime>(static_cast<double>(t) *
                              (1.0 + model_.jitter_frac * rng_.next_double()));
}

void Network::adjust_sockets(NodeId node, int delta) {
  NodeState& st = nodes_[node];
  st.open_sockets += delta;
  if (st.watched) st.socket_ts.record(engine_.now(), st.open_sockets);
}

void Network::watch_sockets(NodeId node) {
  NodeState& st = nodes_.at(node);
  st.watched = true;
  st.socket_ts.record(engine_.now(), st.open_sockets);
}

const TimeSeries& Network::socket_series(NodeId node) const {
  return nodes_.at(node).socket_ts;
}

void Network::fail_at_deadline(std::uint32_t op) {
  ++failed_sends_;
  if (failed_counter_) failed_counter_->inc();
  const SimTime fail_at = std::max(send_ops_[op].deadline, engine_.now());
  engine_.schedule_at(fail_at, [this, op] { complete(op, false); });
}

void Network::release_op(std::uint32_t op) {
  SendOp& state = send_ops_[op];
  if (--state.refs > 0) return;
  // Drop the payload and callback now so a parked free slot does not pin
  // user resources until its next reuse.
  state.msg.payload.reset();
  state.on_complete = nullptr;
  send_ops_.release(op);
}

void Network::complete(std::uint32_t op, bool ok) {
  SendOp& state = send_ops_[op];
  adjust_sockets(state.from, -1);
  adjust_sockets(state.to, -1);
  // Move the callback out before releasing: it may send() reentrantly,
  // which can reuse this very slot.
  SendCallback cb = std::move(state.on_complete);
  release_op(op);
  if (cb) cb(ok);
}

void Network::dispatch(NodeId to, const Message& msg, bool duplicate) {
  NodeState& r = nodes_[to];
  ++r.received;
  if (delivered_counter_) delivered_counter_->inc();
  if (static_cast<std::size_t>(msg.type) < handlers_by_type_.size()) {
    const auto& row = handlers_by_type_[static_cast<std::size_t>(msg.type)];
    if (!row.empty()) {
      const Handler& handler = row[to];
      if (handler) {
        handler(msg);
        return;
      }
    }
  }
  ESLURM_DEBUG("node ", to, duplicate ? " dropped duplicate type " : " dropped message type ",
               msg.type, " from ", msg.src);
}

void Network::arrival_step(std::uint32_t op) {
  // Failure path resolved at arrival time: if the receiver is dead (or
  // the sender died mid-flight), the sender blocks until its timeout.
  SendOp& state = send_ops_[op];
  if (!alive(state.to) || !alive(state.from)) {
    fail_at_deadline(op);
    return;
  }
  // Receive-side serialization: one message at a time per node.
  NodeState& receiver = nodes_[state.to];
  const SimTime recv_start = std::max(engine_.now(), receiver.recv_busy_until);
  const SimTime recv_done = recv_start + recv_processing(state.to);
  receiver.recv_busy_until = recv_done;
  engine_.schedule_at(recv_done, [this, op] { deliver_step(op); });
}

void Network::deliver_step(std::uint32_t op) {
  // `state` stays valid across the handler call: the pool is deque-backed
  // and this op holds a reference, so reentrant sends cannot move or
  // reuse the slot.
  SendOp& state = send_ops_[op];
  dispatch(state.to, state.msg, /*duplicate=*/false);

  if (state.duplicate) {
    // A second copy arrived on the wire: it queues behind this one in
    // the receive serializer and hits the handler again with the same
    // message id -- the receiver cannot tell it from a retransmit.
    NodeState& r = nodes_[state.to];
    const SimTime dup_start = std::max(engine_.now(), r.recv_busy_until);
    const SimTime dup_done = dup_start + recv_processing(state.to);
    r.recv_busy_until = dup_done;
    ++state.refs;
    engine_.schedule_at(dup_done, [this, op] { deliver_duplicate(op); });
  }

  // Ack back to the sender: half a round trip of pure latency.  The
  // ack leg is subject to chaos too: a lost ack means the receiver
  // *did* process the message while the sender observes a timeout --
  // the classic at-least-once ambiguity the reliable transport's
  // dedup window exists for.
  ChaosInjector::Decision ack_verdict;
  if (chaos_) ack_verdict = chaos_->decide(state.to, state.from);
  if (ack_verdict.drop) {
    fail_at_deadline(op);
    return;
  }
  const SimTime ack_at =
      engine_.now() + jittered(propagation(state.to, state.from)) + ack_verdict.extra_delay;
  engine_.schedule_at(ack_at, [this, op] { complete(op, true); });
}

void Network::deliver_duplicate(std::uint32_t op) {
  SendOp& state = send_ops_[op];
  dispatch(state.to, state.msg, /*duplicate=*/true);
  release_op(op);
}

void Network::send(NodeId from, NodeId to, Message msg, SimTime timeout,
                   SendCallback on_complete) {
  if (from >= nodes_.size() || to >= nodes_.size())
    throw std::out_of_range("Network::send: bad node id");
  if (timeout <= 0) timeout = model_.default_timeout;

  msg.id = next_msg_id_++;
  msg.src = from;
  ++total_messages_;
  total_bytes_ += msg.bytes;
  if (messages_counter_) messages_counter_->inc();
  if (bytes_counter_) bytes_counter_->inc(static_cast<double>(msg.bytes));

  NodeState& sender = nodes_[from];
  ++sender.sent;

  // Sender-side serialization: the sending daemon spends send_processing
  // per message, one at a time.  Fan-out from a single node is therefore
  // inherently serial -- the core scalability effect the paper exploits.
  const SimTime send_start = std::max(engine_.now(), sender.send_busy_until);
  const SimTime send_done = send_start + model_.send_processing;
  sender.send_busy_until = send_done;

  const SimTime wire =
      jittered(propagation(from, to) + model_.connection_setup) +
      static_cast<SimTime>(static_cast<double>(msg.bytes) /
                           model_.bandwidth_bytes_per_sec * 1e9);

  // Chaos verdict for the outbound leg (cheap no-op without an injector).
  ChaosInjector::Decision verdict;
  if (chaos_) verdict = chaos_->decide(from, to);

  const SimTime arrival = send_done + wire + verdict.extra_delay;

  // The connection stays open from the start of the send until completion
  // (ack) or timeout; both endpoints hold a socket for that span.
  adjust_sockets(from, +1);
  adjust_sockets(to, +1);

  // Park the exchange in the op pool; the initial reference belongs to
  // the primary chain (arrival -> delivery -> ack, or the timeout event).
  const std::uint32_t op = send_ops_.acquire();
  SendOp& state = send_ops_[op];
  state.msg = std::move(msg);
  state.on_complete = std::move(on_complete);
  state.deadline = engine_.now() + timeout;
  state.from = from;
  state.to = to;
  state.duplicate = verdict.duplicate;
  state.refs = 1;

  if (verdict.drop) {
    // Lost in flight (random drop or partition): the receiver never sees
    // the message and the sender observes a timeout, exactly as with a
    // dead peer.
    fail_at_deadline(op);
    return;
  }
  engine_.schedule_at(arrival, [this, op] { arrival_step(op); });
}

}  // namespace eslurm::net
