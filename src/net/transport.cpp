#include "net/transport.hpp"

#include <algorithm>
#include <utility>

#include "telemetry/telemetry.hpp"

namespace eslurm::net {

namespace {

/// Packs a (sender, receiver, type) channel into one map key.  Node ids
/// stay well under 2^24 and message types under 2^16 for every world the
/// simulator builds, so the fields cannot collide.
std::uint64_t channel_key(NodeId from, NodeId to, MessageType type) {
  return (static_cast<std::uint64_t>(from) << 40) |
         (static_cast<std::uint64_t>(to) << 16) |
         static_cast<std::uint64_t>(static_cast<std::uint16_t>(type));
}

}  // namespace

SimTime worst_case_send_time(const TransportOptions& options,
                             SimTime per_attempt_timeout) {
  double backoff_sum = 0.0;
  double rto = static_cast<double>(options.rto_initial);
  for (int i = 0; i < options.max_retries; ++i) {
    backoff_sum += std::min(rto, static_cast<double>(options.rto_max));
    rto *= options.backoff_factor;
  }
  backoff_sum *= 1.0 + options.jitter_frac;
  return per_attempt_timeout * (options.max_retries + 1) +
         static_cast<SimTime>(backoff_sum);
}

struct ReliableTransport::PendingSend {
  NodeId from = kNoNode;
  NodeId to = kNoNode;
  Message frame;
  SimTime timeout = 0;
  SendCallback on_complete;
  int attempt = 0;  ///< attempts started (1 = the initial send)
};

ReliableTransport::ReliableTransport(Network& network, Rng rng,
                                     TransportOptions options, std::string name)
    : network_(network),
      rng_(std::move(rng)),
      options_(options),
      name_(std::move(name)) {
  if (auto* t = network_.engine().telemetry()) {
    sends_counter_ =
        &t->metrics.counter("transport.sends", {{"transport", name_}});
    retransmits_counter_ =
        &t->metrics.counter("transport.retransmits", {{"transport", name_}});
    failures_counter_ = &t->metrics.counter("transport.permanent_failures",
                                            {{"transport", name_}});
    duplicates_counter_ = &t->metrics.counter("transport.duplicates_suppressed",
                                              {{"transport", name_}});
    wraps_counter_ = &t->metrics.counter("transport.dedup_window_wrap",
                                         {{"transport", name_}});
  }
}

ReliableTransport::~ReliableTransport() {
  for (const auto& [node, type] : registered_) {
    network_.unregister_handler(node, type);
  }
}

SimTime ReliableTransport::backoff_delay(int attempt) {
  double rto = static_cast<double>(options_.rto_initial);
  for (int i = 1; i < attempt; ++i) rto *= options_.backoff_factor;
  rto = std::min(rto, static_cast<double>(options_.rto_max));
  // Symmetric jitter desynchronizes retransmit storms; the draw only
  // happens on a retransmit, so loss-free runs touch no rng state.
  if (options_.jitter_frac > 0.0) {
    rto *= 1.0 + options_.jitter_frac * (2.0 * rng_.next_double() - 1.0);
  }
  return std::max<SimTime>(1, static_cast<SimTime>(rto));
}

void ReliableTransport::attempt(std::shared_ptr<PendingSend> pending) {
  ++pending->attempt;
  Message copy = pending->frame;
  network_.send(pending->from, pending->to, std::move(copy), pending->timeout,
                [this, pending](bool ok) {
                  if (ok) {
                    if (pending->on_complete) pending->on_complete(true);
                    return;
                  }
                  if (pending->attempt > options_.max_retries) {
                    ++permanent_failures_;
                    if (failures_counter_) failures_counter_->inc();
                    if (pending->on_complete) pending->on_complete(false);
                    return;
                  }
                  ++retransmits_;
                  if (retransmits_counter_) retransmits_counter_->inc();
                  network_.engine().schedule_after(
                      backoff_delay(pending->attempt),
                      [this, pending] { attempt(pending); });
                });
}

void ReliableTransport::send(NodeId from, NodeId to, Message msg,
                             SimTime timeout, SendCallback on_complete) {
  ++sends_;
  if (sends_counter_) sends_counter_->inc();

  const std::uint64_t key = channel_key(from, to, msg.type);
  Envelope envelope;
  envelope.seq = next_seq_[key]++;
  envelope.inner = std::move(msg.payload);

  auto pending = std::make_shared<PendingSend>();
  pending->from = from;
  pending->to = to;
  pending->frame = std::move(msg);
  pending->frame.payload = std::move(envelope);
  pending->frame.bytes += options_.header_bytes;
  pending->timeout = timeout;
  pending->on_complete = std::move(on_complete);
  attempt(std::move(pending));
}

void ReliableTransport::register_handler(NodeId node, MessageType type,
                                         Handler handler) {
  network_.register_handler(
      node, type, [this, node, type, handler = std::move(handler)](const Message& frame) {
        const Envelope& envelope = frame.body<Envelope>();
        const std::uint64_t key = channel_key(frame.src, node, type);
        DedupWindow& window = windows_[key];
        if (window.seen.count(envelope.seq)) {
          // Retransmit after a lost ack, or a chaos duplicate: ack it
          // (the network already does) but do not re-process.
          ++duplicates_suppressed_;
          if (duplicates_counter_) duplicates_counter_->inc();
          return;
        }
        if (window.evicted_any && envelope.seq <= window.evicted_max) {
          // The window has already forgotten sequence numbers this old:
          // if this frame is a late retransmit it will be re-processed.
          // Count the wrap (the guarantee boundary) but deliver -- the
          // transport cannot distinguish it from a never-seen frame.
          ++dedup_window_wraps_;
          if (wraps_counter_) wraps_counter_->inc();
        }
        window.seen.insert(envelope.seq);
        window.order.push_back(envelope.seq);
        if (window.order.size() > options_.dedup_window) {
          const std::uint64_t evicted = window.order.front();
          window.evicted_max = std::max(window.evicted_max, evicted);
          window.evicted_any = true;
          window.seen.erase(evicted);
          window.order.pop_front();
        }
        Message inner = frame;
        inner.payload = envelope.inner;
        if (inner.bytes >= options_.header_bytes) {
          inner.bytes -= options_.header_bytes;
        }
        handler(inner);
      });
  registered_.emplace_back(node, type);
}

void ReliableTransport::unregister_handler(NodeId node, MessageType type) {
  network_.unregister_handler(node, type);
  registered_.erase(
      std::remove(registered_.begin(), registered_.end(),
                  std::make_pair(node, type)),
      registered_.end());
}

}  // namespace eslurm::net
