#include "ml/metrics.hpp"

#include <cmath>
#include <stdexcept>

namespace eslurm::ml {
namespace {
void check_sizes(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size() || a.empty())
    throw std::invalid_argument("metrics: size mismatch or empty");
}
}  // namespace

double mean_squared_error(const std::vector<double>& truth,
                          const std::vector<double>& predicted) {
  check_sizes(truth, predicted);
  double s = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const double d = truth[i] - predicted[i];
    s += d * d;
  }
  return s / static_cast<double>(truth.size());
}

double mean_absolute_error(const std::vector<double>& truth,
                           const std::vector<double>& predicted) {
  check_sizes(truth, predicted);
  double s = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) s += std::abs(truth[i] - predicted[i]);
  return s / static_cast<double>(truth.size());
}

double r2_score(const std::vector<double>& truth, const std::vector<double>& predicted) {
  check_sizes(truth, predicted);
  double mean = 0.0;
  for (double t : truth) mean += t;
  mean /= static_cast<double>(truth.size());
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    ss_res += (truth[i] - predicted[i]) * (truth[i] - predicted[i]);
    ss_tot += (truth[i] - mean) * (truth[i] - mean);
  }
  if (ss_tot < 1e-12) return ss_res < 1e-12 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

}  // namespace eslurm::ml
