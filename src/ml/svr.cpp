#include "ml/svr.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "ml/kmeans.hpp"  // squared_distance

namespace eslurm::ml {

Svr::Svr(SvrParams params) : params_(params) {
  if (params_.c <= 0) throw std::invalid_argument("Svr: C must be positive");
  if (params_.epsilon < 0) throw std::invalid_argument("Svr: epsilon must be >= 0");
}

double Svr::kernel(const std::vector<double>& a, const std::vector<double>& b) const {
  switch (params_.kernel) {
    case Kernel::Rbf:
      return std::exp(-gamma_ * squared_distance(a, b));
    case Kernel::Linear: {
      double dot = 0.0;
      for (std::size_t i = 0; i < a.size(); ++i) dot += a[i] * b[i];
      return dot;
    }
  }
  return 0.0;
}

void Svr::fit(const Dataset& data) {
  data.check();
  std::size_t n = data.rows();
  if (n == 0) throw std::invalid_argument("Svr::fit: empty dataset");
  n = std::min(n, params_.max_rows);
  gamma_ = params_.gamma > 0 ? params_.gamma
                             : 1.0 / static_cast<double>(std::max<std::size_t>(1, data.cols()));

  support_x_.assign(data.x.begin(), data.x.begin() + static_cast<std::ptrdiff_t>(n));
  beta_.assign(n, 0.0);

  // Center the targets: the bias-augmented kernel (K + 1) can express a
  // global offset, but pushing the full target mean through that rank-1
  // component makes coordinate descent crawl.  Solve on residuals.
  y_offset_ = 0.0;
  for (std::size_t i = 0; i < n; ++i) y_offset_ += data.y[i];
  y_offset_ /= static_cast<double>(n);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) y[i] = data.y[i] - y_offset_;

  // Dense kernel matrix.  No bias augmentation: the centered-target
  // offset plays the bias role, keeping the matrix diagonally strong so
  // coordinate descent converges in a handful of sweeps.
  std::vector<double> k(n * n);
  double diag_mean = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double v = kernel(support_x_[i], support_x_[j]);
      k[i * n + j] = v;
      k[j * n + i] = v;
    }
    diag_mean += k[i * n + i];
  }
  diag_mean /= static_cast<double>(n);
  // Diagonal jitter: workload feature spaces contain near-duplicate rows
  // (the same job configuration resubmitted), which make the kernel
  // matrix nearly singular and coordinate descent arbitrarily slow.  A
  // small ridge restores strong convexity at negligible bias.
  for (std::size_t i = 0; i < n; ++i) k[i * n + i] += 0.05 * diag_mean;

  // f[i] = sum_j K'_ij beta_j, maintained incrementally.
  std::vector<double> f(n, 0.0);
  for (std::size_t sweep = 0; sweep < params_.max_sweeps; ++sweep) {
    double max_delta = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double kii = k[i * n + i];
      if (kii <= 1e-12) continue;
      const double residual = y[i] - (f[i] - kii * beta_[i]);
      double nb = 0.0;
      if (residual > params_.epsilon) {
        nb = (residual - params_.epsilon) / kii;
      } else if (residual < -params_.epsilon) {
        nb = (residual + params_.epsilon) / kii;
      }
      nb = std::clamp(nb, -params_.c, params_.c);
      const double delta = nb - beta_[i];
      if (delta != 0.0) {
        const double* row = &k[i * n];
        for (std::size_t j = 0; j < n; ++j) f[j] += delta * row[j];
        beta_[i] = nb;
        max_delta = std::max(max_delta, std::abs(delta));
      }
    }
    if (max_delta < params_.tolerance) break;
  }

  // Compact to actual support vectors to speed up prediction.
  std::vector<std::vector<double>> sx;
  std::vector<double> sb;
  for (std::size_t i = 0; i < n; ++i) {
    if (std::abs(beta_[i]) > 1e-12) {
      sx.push_back(std::move(support_x_[i]));
      sb.push_back(beta_[i]);
    }
  }
  support_x_ = std::move(sx);
  beta_ = std::move(sb);
  trained_ = true;
}

double Svr::predict(const std::vector<double>& features) const {
  if (!trained_) throw std::logic_error("Svr::predict before fit");
  double out = y_offset_;
  for (std::size_t i = 0; i < support_x_.size(); ++i)
    out += beta_[i] * kernel(support_x_[i], features);
  return out;
}

std::size_t Svr::support_vector_count() const { return beta_.size(); }

}  // namespace eslurm::ml
