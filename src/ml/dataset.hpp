// Dense regression dataset shared by all estimators in eslurm::ml.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace eslurm::ml {

/// Row-major feature matrix plus targets.  Kept deliberately simple: the
/// runtime-estimation workloads are a few hundred rows x ~6 features per
/// cluster, so cache-friendliness beats abstraction.
struct Dataset {
  std::vector<std::vector<double>> x;
  std::vector<double> y;

  std::size_t rows() const { return x.size(); }
  std::size_t cols() const { return x.empty() ? 0 : x.front().size(); }

  void add(std::vector<double> features, double target) {
    if (!x.empty() && features.size() != x.front().size())
      throw std::invalid_argument("Dataset::add: inconsistent feature width");
    x.push_back(std::move(features));
    y.push_back(target);
  }

  /// Validates rectangular shape and matching target length.
  void check() const;
};

/// Abstract regressor interface so the prediction framework can swap
/// models (SVR / RF / ridge / Tobit / ensembles) behind one API.
class Regressor {
 public:
  virtual ~Regressor() = default;
  virtual void fit(const Dataset& data) = 0;
  virtual double predict(const std::vector<double>& features) const = 0;
  virtual bool trained() const = 0;
};

}  // namespace eslurm::ml
