// CART regression tree (variance-reduction splits), the base learner of
// the RandomForest baseline (Fig. 11b) and of the IRPA ensemble.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "ml/dataset.hpp"
#include "util/rng.hpp"

namespace eslurm::ml {

struct TreeParams {
  std::size_t max_depth = 12;
  std::size_t min_samples_leaf = 2;
  std::size_t min_samples_split = 4;
  /// Features examined per split; 0 means all (plain CART).  Forests set
  /// this to ~d/3 for regression.
  std::size_t max_features = 0;
};

class DecisionTree final : public Regressor {
 public:
  explicit DecisionTree(TreeParams params = {}, Rng rng = Rng(77));

  void fit(const Dataset& data) override;

  /// Fits on a row subset (bootstrap support for forests).
  void fit_indices(const Dataset& data, const std::vector<std::size_t>& indices);

  double predict(const std::vector<double>& features) const override;
  bool trained() const override { return !nodes_.empty(); }

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t depth() const { return depth_; }

 private:
  struct Node {
    // Leaf iff feature == SIZE_MAX.
    std::size_t feature = SIZE_MAX;
    double threshold = 0.0;
    double value = 0.0;  ///< mean target at the leaf
    std::size_t left = 0, right = 0;
  };

  std::size_t build(const Dataset& data, std::vector<std::size_t>& indices,
                    std::size_t begin, std::size_t end, std::size_t depth);

  TreeParams params_;
  Rng rng_;
  std::vector<Node> nodes_;
  std::size_t depth_ = 0;
};

}  // namespace eslurm::ml
