#include "ml/forest.hpp"

#include <algorithm>
#include <stdexcept>

namespace eslurm::ml {

RandomForest::RandomForest(ForestParams params, Rng rng) : params_(params), rng_(rng) {
  if (params_.n_trees == 0) throw std::invalid_argument("RandomForest: n_trees >= 1");
}

void RandomForest::fit(const Dataset& data) {
  data.check();
  if (data.rows() == 0) throw std::invalid_argument("RandomForest::fit: empty dataset");
  trees_.clear();
  trees_.reserve(params_.n_trees);

  TreeParams tp = params_.tree;
  if (tp.max_features == 0)
    tp.max_features = std::max<std::size_t>(1, data.cols() / 3);

  const auto sample_size = static_cast<std::size_t>(
      params_.bootstrap_fraction * static_cast<double>(data.rows()));
  for (std::size_t t = 0; t < params_.n_trees; ++t) {
    std::vector<std::size_t> indices;
    indices.reserve(sample_size);
    for (std::size_t i = 0; i < std::max<std::size_t>(1, sample_size); ++i)
      indices.push_back(static_cast<std::size_t>(
          rng_.uniform_int(0, static_cast<std::int64_t>(data.rows()) - 1)));
    DecisionTree tree(tp, rng_.fork());
    tree.fit_indices(data, indices);
    trees_.push_back(std::move(tree));
  }
}

double RandomForest::predict(const std::vector<double>& features) const {
  if (trees_.empty()) throw std::logic_error("RandomForest::predict before fit");
  double sum = 0.0;
  for (const auto& tree : trees_) sum += tree.predict(features);
  return sum / static_cast<double>(trees_.size());
}

}  // namespace eslurm::ml
