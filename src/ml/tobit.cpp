#include "ml/tobit.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace eslurm::ml {
namespace {

constexpr double kInvSqrt2Pi = 0.3989422804014327;

double norm_pdf(double z) { return kInvSqrt2Pi * std::exp(-0.5 * z * z); }
double norm_cdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

/// Inverse Mills ratio phi(z)/Phi(z) with a stable tail approximation.
double mills(double z) {
  const double cdf = norm_cdf(z);
  if (cdf < 1e-12) return -z;  // asymptote for z -> -inf
  return norm_pdf(z) / cdf;
}

}  // namespace

TobitRegression::TobitRegression(TobitParams params) : params_(params) {}

void TobitRegression::fit(const Dataset& data) {
  CensoredDataset cd;
  cd.data = data;
  cd.censored.assign(data.rows(), false);
  fit_censored(cd);
}

void TobitRegression::fit_censored(const CensoredDataset& cd) {
  const Dataset& data = cd.data;
  data.check();
  const std::size_t n = data.rows(), d = data.cols();
  if (n == 0) throw std::invalid_argument("TobitRegression: empty dataset");
  if (cd.censored.size() != n)
    throw std::invalid_argument("TobitRegression: censoring flags mismatch");

  // Standardize features for well-conditioned gradient steps.
  feat_mean_.assign(d, 0.0);
  feat_scale_.assign(d, 0.0);
  for (const auto& row : data.x)
    for (std::size_t j = 0; j < d; ++j) feat_mean_[j] += row[j];
  for (auto& m : feat_mean_) m /= static_cast<double>(n);
  for (const auto& row : data.x)
    for (std::size_t j = 0; j < d; ++j) {
      const double delta = row[j] - feat_mean_[j];
      feat_scale_[j] += delta * delta;
    }
  for (auto& s : feat_scale_) {
    s = std::sqrt(s / static_cast<double>(n));
    if (s < 1e-12) s = 1.0;
  }
  std::vector<std::vector<double>> xs(n, std::vector<double>(d));
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < d; ++j)
      xs[i][j] = (data.x[i][j] - feat_mean_[j]) / feat_scale_[j];

  // Init: OLS-free start at the target mean, sigma at the target stddev.
  double y_mean = 0.0;
  for (double y : data.y) y_mean += y;
  y_mean /= static_cast<double>(n);
  double y_var = 0.0;
  for (double y : data.y) y_var += (y - y_mean) * (y - y_mean);
  y_var /= static_cast<double>(n);

  w_.assign(d, 0.0);
  b_ = y_mean;
  double log_sigma = 0.5 * std::log(std::max(y_var, 1e-6));

  const double inv_n = 1.0 / static_cast<double>(n);
  double prev_ll = -1e300;
  for (std::size_t iter = 0; iter < params_.max_iters; ++iter) {
    const double sigma = std::exp(log_sigma);
    std::vector<double> gw(d, 0.0);
    double gb = 0.0, gs = 0.0, ll = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double mu = b_;
      for (std::size_t j = 0; j < d; ++j) mu += w_[j] * xs[i][j];
      const double z = (data.y[i] - mu) / sigma;
      if (!cd.censored[i]) {
        // log pdf term.
        ll += -0.5 * z * z - log_sigma - std::log(std::sqrt(2.0 * M_PI));
        const double common = z / sigma;  // d(ll)/d(mu)
        gb += common;
        for (std::size_t j = 0; j < d; ++j) gw[j] += common * xs[i][j];
        gs += z * z - 1.0;  // d(ll)/d(log sigma)
      } else {
        // Right censored at y: contributes log P(Y* > y) = log(1 - Phi(z))
        // = log Phi(-z).
        const double cdf = std::max(norm_cdf(-z), 1e-300);
        ll += std::log(cdf);
        const double m = mills(-z);  // phi(-z)/Phi(-z)
        const double common = m / sigma;  // d(ll)/d(mu)
        gb += common;
        for (std::size_t j = 0; j < d; ++j) gw[j] += common * xs[i][j];
        gs += m * z;
      }
    }
    // Clipped steps: near-zero sigma makes the censored-term gradients
    // explode (Mills ratio / sigma), so bound each parameter's move.
    const double lr = params_.learning_rate;
    auto step = [&](double g) { return std::clamp(lr * g * inv_n, -0.1, 0.1); };
    for (std::size_t j = 0; j < d; ++j) w_[j] += step(gw[j]);
    b_ += step(gb);
    log_sigma += step(gs);
    log_sigma = std::clamp(log_sigma, -15.0, 15.0);
    if (std::abs(ll - prev_ll) < params_.tol * (std::abs(prev_ll) + 1.0)) {
      prev_ll = ll;
      break;
    }
    prev_ll = ll;
  }
  sigma_ = std::exp(log_sigma);
  loglik_ = prev_ll;
  trained_ = true;
}

double TobitRegression::predict(const std::vector<double>& features) const {
  if (!trained_) throw std::logic_error("TobitRegression::predict before fit");
  double out = b_;
  for (std::size_t j = 0; j < w_.size(); ++j)
    out += w_[j] * (features[j] - feat_mean_[j]) / feat_scale_[j];
  return out;
}

}  // namespace eslurm::ml
