// Linear models: ridge regression (closed form) and Bayesian ridge
// (evidence-approximation hyper-parameter estimation).  Bayesian ridge is
// one leg of the IRPA ensemble baseline (Wu et al.).
#pragma once

#include <vector>

#include "ml/dataset.hpp"

namespace eslurm::ml {

/// Solves the symmetric positive-definite system A w = b in place via
/// Cholesky decomposition.  A is row-major d x d.  Throws on a
/// non-positive-definite matrix.
std::vector<double> cholesky_solve(std::vector<double> a, std::vector<double> b,
                                   std::size_t d);

class RidgeRegression final : public Regressor {
 public:
  explicit RidgeRegression(double lambda = 1.0);

  void fit(const Dataset& data) override;
  double predict(const std::vector<double>& features) const override;
  bool trained() const override { return trained_; }

  const std::vector<double>& weights() const { return w_; }
  double intercept() const { return b_; }

 private:
  double lambda_;
  bool trained_ = false;
  std::vector<double> w_;
  double b_ = 0.0;
};

/// Bayesian ridge: iteratively re-estimates the noise precision (alpha)
/// and weight precision (lambda) by the evidence approximation, yielding
/// an automatically regularized linear fit.
class BayesianRidge final : public Regressor {
 public:
  explicit BayesianRidge(std::size_t max_iters = 50, double tol = 1e-4);

  void fit(const Dataset& data) override;
  double predict(const std::vector<double>& features) const override;
  bool trained() const override { return trained_; }

  double alpha() const { return alpha_; }    ///< noise precision
  double lambda() const { return lambda_; }  ///< weight precision

 private:
  std::size_t max_iters_;
  double tol_;
  bool trained_ = false;
  std::vector<double> w_;
  double b_ = 0.0;
  double alpha_ = 1.0, lambda_ = 1.0;
};

}  // namespace eslurm::ml
