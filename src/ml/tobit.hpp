// Tobit (censored) regression, the core of the TRIP baseline (Fan et al.,
// CLUSTER'17): recorded job runtimes are right-censored whenever the job
// was killed at its requested wall-clock limit, and Tobit regression
// recovers the uncensored relationship by maximizing the censored
// likelihood.
#pragma once

#include <vector>

#include "ml/dataset.hpp"

namespace eslurm::ml {

/// Right-censored dataset: censored[i] == true means y[i] is only a lower
/// bound on the true value (the job hit its limit at y[i]).
struct CensoredDataset {
  Dataset data;
  std::vector<bool> censored;

  void add(std::vector<double> features, double target, bool is_censored) {
    data.add(std::move(features), target);
    censored.push_back(is_censored);
  }
};

struct TobitParams {
  std::size_t max_iters = 500;
  double learning_rate = 0.05;
  double tol = 1e-6;
};

class TobitRegression final : public Regressor {
 public:
  explicit TobitRegression(TobitParams params = {});

  /// Regressor-interface fit treats all samples as uncensored.
  void fit(const Dataset& data) override;

  /// Full Tobit fit with per-sample censoring flags.  Maximizes the
  /// censored log likelihood by gradient ascent on (w, b, log sigma);
  /// features are internally standardized for stable steps.
  void fit_censored(const CensoredDataset& data);

  double predict(const std::vector<double>& features) const override;
  bool trained() const override { return trained_; }

  double sigma() const { return sigma_; }
  double log_likelihood() const { return loglik_; }

 private:
  TobitParams params_;
  bool trained_ = false;
  std::vector<double> w_;
  double b_ = 0.0;
  double sigma_ = 1.0;
  double loglik_ = 0.0;
  std::vector<double> feat_mean_, feat_scale_;
};

}  // namespace eslurm::ml
