// K-means++ clustering (Arthur & Vassilvitskii 2007) plus the classical
// elbow heuristic -- the combination Section V-A of the paper uses to
// group historical jobs before training per-cluster SVR models.
#pragma once

#include <cstddef>
#include <vector>

#include "ml/dataset.hpp"
#include "util/rng.hpp"

namespace eslurm::ml {

struct KMeansParams {
  std::size_t k = 15;          ///< paper default from the elbow method
  std::size_t max_iters = 100;
  double tolerance = 1e-6;     ///< relative inertia improvement stop
};

class KMeans {
 public:
  explicit KMeans(KMeansParams params, Rng rng = Rng(12345));

  /// Fits on the feature rows of `data` (targets are ignored).
  /// If there are fewer rows than k, k is reduced to the row count.
  void fit(const Dataset& data);

  bool fitted() const { return !centroids_.empty(); }
  std::size_t k() const { return centroids_.size(); }
  const std::vector<std::vector<double>>& centroids() const { return centroids_; }

  /// Index of the closest centroid.
  std::size_t assign(const std::vector<double>& row) const;

  /// Cluster labels for every training row (valid after fit()).
  const std::vector<std::size_t>& labels() const { return labels_; }

  /// Sum of squared distances to assigned centroids.
  double inertia() const { return inertia_; }

 private:
  double run_lloyd(const std::vector<std::vector<double>>& rows);
  std::vector<std::vector<double>> seed_plus_plus(
      const std::vector<std::vector<double>>& rows, std::size_t k);

  KMeansParams params_;
  Rng rng_;
  std::vector<std::vector<double>> centroids_;
  std::vector<std::size_t> labels_;
  double inertia_ = 0.0;
};

/// Elbow method: fits k-means for k in [k_min, k_max] and picks the k with
/// the largest distance from the inertia curve to the straight line joining
/// its endpoints (the standard "kneedle"-style geometric criterion cited by
/// the paper's references).
std::size_t elbow_select_k(const Dataset& data, std::size_t k_min, std::size_t k_max,
                           Rng rng = Rng(999), std::vector<double>* inertias = nullptr);

/// Squared Euclidean distance helper shared with the predictor module.
double squared_distance(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace eslurm::ml
