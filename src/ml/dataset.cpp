#include "ml/dataset.hpp"

namespace eslurm::ml {

void Dataset::check() const {
  if (x.size() != y.size())
    throw std::invalid_argument("Dataset: |x| != |y|");
  const std::size_t width = cols();
  for (const auto& row : x)
    if (row.size() != width)
      throw std::invalid_argument("Dataset: ragged feature matrix");
}

}  // namespace eslurm::ml
