// Per-feature standardization (zero mean, unit variance).
#pragma once

#include <vector>

#include "ml/dataset.hpp"

namespace eslurm::ml {

class StandardScaler {
 public:
  void fit(const Dataset& data);
  bool fitted() const { return !mean_.empty(); }

  std::vector<double> transform(const std::vector<double>& row) const;
  Dataset transform(const Dataset& data) const;

  const std::vector<double>& mean() const { return mean_; }
  const std::vector<double>& stddev() const { return stddev_; }

 private:
  std::vector<double> mean_;
  std::vector<double> stddev_;  ///< constant features get stddev 1
};

}  // namespace eslurm::ml
