// Regression quality metrics.
#pragma once

#include <vector>

namespace eslurm::ml {

double mean_squared_error(const std::vector<double>& truth,
                          const std::vector<double>& predicted);
double mean_absolute_error(const std::vector<double>& truth,
                           const std::vector<double>& predicted);
/// Coefficient of determination; 1 is perfect, 0 matches predicting the mean.
double r2_score(const std::vector<double>& truth, const std::vector<double>& predicted);

}  // namespace eslurm::ml
