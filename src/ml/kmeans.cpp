#include "ml/kmeans.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace eslurm::ml {

double squared_distance(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

KMeans::KMeans(KMeansParams params, Rng rng) : params_(params), rng_(rng) {
  if (params_.k == 0) throw std::invalid_argument("KMeans: k must be >= 1");
}

std::vector<std::vector<double>> KMeans::seed_plus_plus(
    const std::vector<std::vector<double>>& rows, std::size_t k) {
  std::vector<std::vector<double>> centers;
  centers.reserve(k);
  // First center uniformly at random.
  centers.push_back(rows[static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(rows.size()) - 1))]);
  std::vector<double> d2(rows.size(), 0.0);
  while (centers.size() < k) {
    double total = 0.0;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      double best = std::numeric_limits<double>::max();
      for (const auto& c : centers) best = std::min(best, squared_distance(rows[i], c));
      d2[i] = best;
      total += best;
    }
    if (total <= 0.0) {
      // All remaining points coincide with existing centers; duplicate one.
      centers.push_back(centers.front());
      continue;
    }
    // Sample proportional to squared distance (the "++" seeding).
    double pick = rng_.next_double() * total;
    std::size_t chosen = rows.size() - 1;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      pick -= d2[i];
      if (pick <= 0.0) {
        chosen = i;
        break;
      }
    }
    centers.push_back(rows[chosen]);
  }
  return centers;
}

double KMeans::run_lloyd(const std::vector<std::vector<double>>& rows) {
  const std::size_t n = rows.size();
  const std::size_t d = rows.front().size();
  const std::size_t k = centroids_.size();
  labels_.assign(n, 0);
  double prev_inertia = std::numeric_limits<double>::max();
  for (std::size_t iter = 0; iter < params_.max_iters; ++iter) {
    // Assignment step.
    double inertia = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::max();
      std::size_t best_c = 0;
      for (std::size_t c = 0; c < k; ++c) {
        const double dist = squared_distance(rows[i], centroids_[c]);
        if (dist < best) {
          best = dist;
          best_c = c;
        }
      }
      labels_[i] = best_c;
      inertia += best;
    }
    // Update step.
    std::vector<std::vector<double>> sums(k, std::vector<double>(d, 0.0));
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < n; ++i) {
      ++counts[labels_[i]];
      for (std::size_t j = 0; j < d; ++j) sums[labels_[i]][j] += rows[i][j];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;  // empty cluster keeps its centroid
      for (std::size_t j = 0; j < d; ++j)
        centroids_[c][j] = sums[c][j] / static_cast<double>(counts[c]);
    }
    if (prev_inertia - inertia <= params_.tolerance * std::max(1.0, prev_inertia)) {
      prev_inertia = inertia;
      break;
    }
    prev_inertia = inertia;
  }
  return prev_inertia;
}

void KMeans::fit(const Dataset& data) {
  data.check();
  if (data.rows() == 0) throw std::invalid_argument("KMeans::fit: empty dataset");
  const std::size_t k = std::min(params_.k, data.rows());
  centroids_ = seed_plus_plus(data.x, k);
  inertia_ = run_lloyd(data.x);
}

std::size_t KMeans::assign(const std::vector<double>& row) const {
  if (!fitted()) throw std::logic_error("KMeans::assign before fit");
  double best = std::numeric_limits<double>::max();
  std::size_t best_c = 0;
  for (std::size_t c = 0; c < centroids_.size(); ++c) {
    const double dist = squared_distance(row, centroids_[c]);
    if (dist < best) {
      best = dist;
      best_c = c;
    }
  }
  return best_c;
}

std::size_t elbow_select_k(const Dataset& data, std::size_t k_min, std::size_t k_max,
                           Rng rng, std::vector<double>* inertias) {
  if (k_min < 1 || k_max < k_min)
    throw std::invalid_argument("elbow_select_k: bad k range");
  k_max = std::min(k_max, std::max<std::size_t>(1, data.rows()));
  k_min = std::min(k_min, k_max);
  std::vector<double> curve;
  for (std::size_t k = k_min; k <= k_max; ++k) {
    KMeans km(KMeansParams{.k = k}, rng.fork());
    km.fit(data);
    curve.push_back(km.inertia());
  }
  if (inertias) *inertias = curve;
  if (curve.size() <= 2) return k_min;
  // Max perpendicular distance from the line between the curve endpoints.
  const double x1 = static_cast<double>(k_min), y1 = curve.front();
  const double x2 = static_cast<double>(k_max), y2 = curve.back();
  const double norm = std::hypot(x2 - x1, y2 - y1);
  std::size_t best_k = k_min;
  double best_d = -1.0;
  for (std::size_t i = 0; i < curve.size(); ++i) {
    const double x0 = static_cast<double>(k_min + i), y0 = curve[i];
    const double dist =
        std::abs((y2 - y1) * x0 - (x2 - x1) * y0 + x2 * y1 - y2 * x1) / std::max(norm, 1e-12);
    if (dist > best_d) {
      best_d = dist;
      best_k = k_min + i;
    }
  }
  return best_k;
}

}  // namespace eslurm::ml
