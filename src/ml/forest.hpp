// Random-forest regression: bagged CART trees with feature subsampling.
// Serves as the RandomForest baseline of Fig. 11b and as a component of
// the IRPA ensemble baseline.
#pragma once

#include <memory>
#include <vector>

#include "ml/tree.hpp"

namespace eslurm::ml {

struct ForestParams {
  std::size_t n_trees = 50;
  TreeParams tree;          ///< tree.max_features == 0 -> d/3 heuristic
  double bootstrap_fraction = 1.0;
};

class RandomForest final : public Regressor {
 public:
  explicit RandomForest(ForestParams params = {}, Rng rng = Rng(101));

  void fit(const Dataset& data) override;
  double predict(const std::vector<double>& features) const override;
  bool trained() const override { return !trees_.empty(); }

  std::size_t tree_count() const { return trees_.size(); }

 private:
  ForestParams params_;
  Rng rng_;
  std::vector<DecisionTree> trees_;
};

}  // namespace eslurm::ml
