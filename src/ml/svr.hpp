// Epsilon-support-vector regression, the per-cluster estimation model of
// Section V-A.
//
// Solver: coordinate descent on the dual in the beta = alpha - alpha*
// parameterization of the *bias-free* SVR: targets are centered before
// solving and the mean is restored at prediction time, which removes the
// equality constraint, keeps the kernel matrix diagonally strong, and
// makes each coordinate update a closed-form soft threshold.  Training
// sets here are small (an interest window holds at most ~700 jobs split
// over ~15 clusters), so the dense kernel matrix is cheap and the solver
// converges in a handful of sweeps.
#pragma once

#include <vector>

#include "ml/dataset.hpp"

namespace eslurm::ml {

enum class Kernel { Rbf, Linear };

struct SvrParams {
  Kernel kernel = Kernel::Rbf;
  double c = 10.0;           ///< box constraint
  double epsilon = 0.1;      ///< insensitive-tube half width
  double gamma = 0.0;        ///< RBF width; <= 0 means 1/num_features
  std::size_t max_sweeps = 200;
  double tolerance = 1e-5;   ///< max |beta| change per sweep to stop
  std::size_t max_rows = 4000;  ///< guard against quadratic blow-up
};

class Svr final : public Regressor {
 public:
  explicit Svr(SvrParams params = {});

  void fit(const Dataset& data) override;
  double predict(const std::vector<double>& features) const override;
  bool trained() const override { return trained_; }

  /// Number of support vectors (beta != 0) after training.
  std::size_t support_vector_count() const;

  const SvrParams& params() const { return params_; }

 private:
  double kernel(const std::vector<double>& a, const std::vector<double>& b) const;

  SvrParams params_;
  double gamma_ = 1.0;
  bool trained_ = false;
  double y_offset_ = 0.0;  ///< target mean, centered out before solving
  std::vector<std::vector<double>> support_x_;
  std::vector<double> beta_;
};

}  // namespace eslurm::ml
