#include "ml/tree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace eslurm::ml {

DecisionTree::DecisionTree(TreeParams params, Rng rng) : params_(params), rng_(rng) {}

void DecisionTree::fit(const Dataset& data) {
  std::vector<std::size_t> indices(data.rows());
  std::iota(indices.begin(), indices.end(), std::size_t{0});
  fit_indices(data, indices);
}

void DecisionTree::fit_indices(const Dataset& data, const std::vector<std::size_t>& indices) {
  data.check();
  if (indices.empty()) throw std::invalid_argument("DecisionTree: no training rows");
  nodes_.clear();
  depth_ = 0;
  std::vector<std::size_t> work = indices;
  build(data, work, 0, work.size(), 1);
}

namespace {
// Mean and sum-of-squares helpers over an index range.
struct Moments {
  double sum = 0.0, sum_sq = 0.0;
  std::size_t n = 0;
  void add(double y) {
    sum += y;
    sum_sq += y * y;
    ++n;
  }
  void remove(double y) {
    sum -= y;
    sum_sq -= y * y;
    --n;
  }
  double mean() const { return n ? sum / static_cast<double>(n) : 0.0; }
  /// Total squared error around the mean (n * variance).
  double sse() const {
    return n ? sum_sq - sum * sum / static_cast<double>(n) : 0.0;
  }
};
}  // namespace

std::size_t DecisionTree::build(const Dataset& data, std::vector<std::size_t>& indices,
                                std::size_t begin, std::size_t end, std::size_t depth) {
  depth_ = std::max(depth_, depth);
  const std::size_t n = end - begin;
  Moments all;
  for (std::size_t i = begin; i < end; ++i) all.add(data.y[indices[i]]);

  const std::size_t node_idx = nodes_.size();
  nodes_.push_back(Node{.value = all.mean()});

  if (depth >= params_.max_depth || n < params_.min_samples_split || all.sse() <= 1e-12)
    return node_idx;

  // Candidate features: all, or a random subset for forests.
  const std::size_t d = data.cols();
  std::vector<std::size_t> features(d);
  std::iota(features.begin(), features.end(), std::size_t{0});
  std::size_t n_features = d;
  if (params_.max_features > 0 && params_.max_features < d) {
    rng_.shuffle(features);
    n_features = params_.max_features;
  }

  double best_gain = 0.0;
  std::size_t best_feature = SIZE_MAX;
  double best_threshold = 0.0;

  std::vector<std::pair<double, double>> column(n);  // (feature value, target)
  for (std::size_t fi = 0; fi < n_features; ++fi) {
    const std::size_t f = features[fi];
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t row = indices[begin + i];
      column[i] = {data.x[row][f], data.y[row]};
    }
    std::sort(column.begin(), column.end());
    Moments left;
    Moments right = all;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      left.add(column[i].second);
      right.remove(column[i].second);
      if (column[i].first == column[i + 1].first) continue;  // no split point here
      if (left.n < params_.min_samples_leaf || right.n < params_.min_samples_leaf) continue;
      const double gain = all.sse() - left.sse() - right.sse();
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = f;
        best_threshold = 0.5 * (column[i].first + column[i + 1].first);
      }
    }
  }

  if (best_feature == SIZE_MAX) return node_idx;  // no useful split

  const auto mid_it = std::partition(
      indices.begin() + static_cast<std::ptrdiff_t>(begin),
      indices.begin() + static_cast<std::ptrdiff_t>(end),
      [&](std::size_t row) { return data.x[row][best_feature] <= best_threshold; });
  const auto mid = static_cast<std::size_t>(mid_it - indices.begin());
  if (mid == begin || mid == end) return node_idx;  // numeric edge case

  nodes_[node_idx].feature = best_feature;
  nodes_[node_idx].threshold = best_threshold;
  const std::size_t left_child = build(data, indices, begin, mid, depth + 1);
  const std::size_t right_child = build(data, indices, mid, end, depth + 1);
  nodes_[node_idx].left = left_child;
  nodes_[node_idx].right = right_child;
  return node_idx;
}

double DecisionTree::predict(const std::vector<double>& features) const {
  if (nodes_.empty()) throw std::logic_error("DecisionTree::predict before fit");
  std::size_t idx = 0;
  while (nodes_[idx].feature != SIZE_MAX) {
    idx = features[nodes_[idx].feature] <= nodes_[idx].threshold ? nodes_[idx].left
                                                                 : nodes_[idx].right;
  }
  return nodes_[idx].value;
}

}  // namespace eslurm::ml
