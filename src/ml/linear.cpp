#include "ml/linear.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace eslurm::ml {
namespace {

// Centers the dataset; linear fits solve for weights on centered data and
// recover the intercept as y_mean - w . x_mean.  Conditioning is far
// better than fitting an explicit constant column.
struct Centered {
  std::vector<double> x_mean;
  double y_mean = 0.0;
};

Centered center_stats(const Dataset& data) {
  Centered c;
  const std::size_t n = data.rows(), d = data.cols();
  c.x_mean.assign(d, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    c.y_mean += data.y[i];
    for (std::size_t j = 0; j < d; ++j) c.x_mean[j] += data.x[i][j];
  }
  c.y_mean /= static_cast<double>(n);
  for (auto& m : c.x_mean) m /= static_cast<double>(n);
  return c;
}

// Builds Xc'Xc (row-major) and Xc'yc over centered data.
void normal_equations(const Dataset& data, const Centered& c,
                      std::vector<double>& xtx, std::vector<double>& xty) {
  const std::size_t n = data.rows(), d = data.cols();
  xtx.assign(d * d, 0.0);
  xty.assign(d, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double yc = data.y[i] - c.y_mean;
    for (std::size_t a = 0; a < d; ++a) {
      const double xa = data.x[i][a] - c.x_mean[a];
      xty[a] += xa * yc;
      for (std::size_t b = a; b < d; ++b)
        xtx[a * d + b] += xa * (data.x[i][b] - c.x_mean[b]);
    }
  }
  for (std::size_t a = 0; a < d; ++a)
    for (std::size_t b = 0; b < a; ++b) xtx[a * d + b] = xtx[b * d + a];
}

}  // namespace

std::vector<double> cholesky_solve(std::vector<double> a, std::vector<double> b,
                                   std::size_t d) {
  // In-place Cholesky: a = L L^T (lower triangle).
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double s = a[i * d + j];
      for (std::size_t k = 0; k < j; ++k) s -= a[i * d + k] * a[j * d + k];
      if (i == j) {
        if (s <= 0.0) throw std::runtime_error("cholesky_solve: matrix not SPD");
        a[i * d + j] = std::sqrt(s);
      } else {
        a[i * d + j] = s / a[j * d + j];
      }
    }
  }
  // Forward substitution L z = b.
  for (std::size_t i = 0; i < d; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= a[i * d + k] * b[k];
    b[i] = s / a[i * d + i];
  }
  // Back substitution L^T w = z.
  for (std::size_t ii = d; ii-- > 0;) {
    double s = b[ii];
    for (std::size_t k = ii + 1; k < d; ++k) s -= a[k * d + ii] * b[k];
    b[ii] = s / a[ii * d + ii];
  }
  return b;
}

RidgeRegression::RidgeRegression(double lambda) : lambda_(lambda) {
  if (lambda_ < 0) throw std::invalid_argument("RidgeRegression: lambda >= 0");
}

void RidgeRegression::fit(const Dataset& data) {
  data.check();
  if (data.rows() == 0) throw std::invalid_argument("RidgeRegression::fit: empty dataset");
  const std::size_t d = data.cols();
  const Centered c = center_stats(data);
  std::vector<double> xtx, xty;
  normal_equations(data, c, xtx, xty);
  for (std::size_t j = 0; j < d; ++j) xtx[j * d + j] += lambda_ + 1e-9;
  w_ = cholesky_solve(std::move(xtx), std::move(xty), d);
  b_ = c.y_mean;
  for (std::size_t j = 0; j < d; ++j) b_ -= w_[j] * c.x_mean[j];
  trained_ = true;
}

double RidgeRegression::predict(const std::vector<double>& features) const {
  if (!trained_) throw std::logic_error("RidgeRegression::predict before fit");
  double out = b_;
  for (std::size_t j = 0; j < w_.size(); ++j) out += w_[j] * features[j];
  return out;
}

BayesianRidge::BayesianRidge(std::size_t max_iters, double tol)
    : max_iters_(max_iters), tol_(tol) {}

void BayesianRidge::fit(const Dataset& data) {
  data.check();
  const std::size_t n = data.rows(), d = data.cols();
  if (n == 0) throw std::invalid_argument("BayesianRidge::fit: empty dataset");
  const Centered c = center_stats(data);
  std::vector<double> xtx, xty;
  normal_equations(data, c, xtx, xty);

  alpha_ = 1.0;
  lambda_ = 1.0;
  w_.assign(d, 0.0);
  for (std::size_t iter = 0; iter < max_iters_; ++iter) {
    // Posterior mean: (lambda I + alpha X'X) w = alpha X'y.
    std::vector<double> a(xtx);
    std::vector<double> b(xty);
    for (std::size_t j = 0; j < d; ++j) {
      for (std::size_t k = 0; k < d; ++k) a[j * d + k] *= alpha_;
      a[j * d + j] += lambda_ + 1e-9;
      b[j] *= alpha_;
    }
    const std::vector<double> w_new = cholesky_solve(std::move(a), std::move(b), d);

    // Effective number of well-determined parameters:
    //   gamma = d - lambda * trace(S), with S the posterior covariance.
    std::vector<double> a2(xtx);
    for (std::size_t j = 0; j < d; ++j) {
      for (std::size_t k = 0; k < d; ++k) a2[j * d + k] *= alpha_;
      a2[j * d + j] += lambda_ + 1e-9;
    }
    double trace_s = 0.0;
    for (std::size_t j = 0; j < d; ++j) {
      std::vector<double> e(d, 0.0);
      e[j] = 1.0;
      const auto col = cholesky_solve(a2, std::move(e), d);
      trace_s += col[j];
    }
    const double gamma = static_cast<double>(d) - lambda_ * trace_s;

    double sse = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double pred = 0.0;
      for (std::size_t j = 0; j < d; ++j)
        pred += w_new[j] * (data.x[i][j] - c.x_mean[j]);
      const double r = (data.y[i] - c.y_mean) - pred;
      sse += r * r;
    }

    double w_norm2 = 0.0;
    for (double wj : w_new) w_norm2 += wj * wj;
    const double alpha_new =
        (static_cast<double>(n) - gamma) / std::max(sse, 1e-12);
    const double lambda_new = gamma / std::max(w_norm2, 1e-12);

    double delta = 0.0;
    for (std::size_t j = 0; j < d; ++j) delta += std::abs(w_new[j] - w_[j]);
    w_ = w_new;
    alpha_ = std::clamp(alpha_new, 1e-9, 1e9);
    lambda_ = std::clamp(lambda_new, 1e-9, 1e9);
    if (delta < tol_) break;
  }
  b_ = c.y_mean;
  for (std::size_t j = 0; j < d; ++j) b_ -= w_[j] * c.x_mean[j];
  trained_ = true;
}

double BayesianRidge::predict(const std::vector<double>& features) const {
  if (!trained_) throw std::logic_error("BayesianRidge::predict before fit");
  double out = b_;
  for (std::size_t j = 0; j < w_.size(); ++j) out += w_[j] * features[j];
  return out;
}

}  // namespace eslurm::ml
