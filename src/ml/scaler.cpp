#include "ml/scaler.hpp"

#include <cmath>
#include <stdexcept>

namespace eslurm::ml {

void StandardScaler::fit(const Dataset& data) {
  data.check();
  const std::size_t n = data.rows();
  const std::size_t d = data.cols();
  if (n == 0) throw std::invalid_argument("StandardScaler::fit: empty dataset");
  mean_.assign(d, 0.0);
  stddev_.assign(d, 0.0);
  for (const auto& row : data.x)
    for (std::size_t j = 0; j < d; ++j) mean_[j] += row[j];
  for (std::size_t j = 0; j < d; ++j) mean_[j] /= static_cast<double>(n);
  for (const auto& row : data.x)
    for (std::size_t j = 0; j < d; ++j) {
      const double delta = row[j] - mean_[j];
      stddev_[j] += delta * delta;
    }
  for (std::size_t j = 0; j < d; ++j) {
    stddev_[j] = std::sqrt(stddev_[j] / static_cast<double>(n));
    if (stddev_[j] < 1e-12) stddev_[j] = 1.0;  // constant feature
  }
}

std::vector<double> StandardScaler::transform(const std::vector<double>& row) const {
  if (row.size() != mean_.size())
    throw std::invalid_argument("StandardScaler::transform: width mismatch");
  std::vector<double> out(row.size());
  for (std::size_t j = 0; j < row.size(); ++j)
    out[j] = (row[j] - mean_[j]) / stddev_[j];
  return out;
}

Dataset StandardScaler::transform(const Dataset& data) const {
  Dataset out;
  out.y = data.y;
  out.x.reserve(data.rows());
  for (const auto& row : data.x) out.x.push_back(transform(row));
  return out;
}

}  // namespace eslurm::ml
