#include "predict/accuracy.hpp"

#include <algorithm>

namespace eslurm::predict {

double estimation_accuracy(SimTime predicted, SimTime actual) {
  if (predicted <= 0 || actual <= 0) return 0.0;
  const double p = static_cast<double>(predicted);
  const double r = static_cast<double>(actual);
  return p < r ? p / r : r / p;
}

void AccuracyTracker::add(SimTime predicted, SimTime actual) {
  ++n_;
  ea_sum_ += estimation_accuracy(predicted, actual);
  if (predicted < actual) ++under_;
}

}  // namespace eslurm::predict
