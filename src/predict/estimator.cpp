#include "predict/estimator.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "telemetry/telemetry.hpp"
#include "util/log.hpp"

namespace eslurm::predict {

RuntimeEstimator::RuntimeEstimator(EstimatorConfig config, Rng rng,
                                   telemetry::Telemetry* telemetry)
    : config_(config), rng_(rng), telemetry_(telemetry) {}

void RuntimeEstimator::record_completion(const sched::Job& job) {
  if (job.actual_runtime <= 0) return;
  HistoricJob item;
  item.features = encode_features(job);
  item.log_runtime = std::log(to_seconds(job.actual_runtime));

  // Refresh the AEA of the cluster this job maps to, using the model
  // prediction the real-time module would have produced (Eqs. 4-5).
  if (model_ready()) {
    if (const auto predicted = model_predict(item.features)) {
      const auto [value, cluster] = *predicted;
      models_[cluster].accuracy.add(value, job.actual_runtime);
      model_accuracy_.add(value, job.actual_runtime);
      if (auto* t = telemetry_) {
        t->metrics
            .gauge("predict.cluster_aea", {{"cluster", std::to_string(cluster)}})
            .set(models_[cluster].accuracy.aea());
        t->metrics.gauge("predict.model_aea").set(model_accuracy_.aea());
      }
    }
  }

  history_.push_back(std::move(item));
  if (history_.size() > config_.max_history) history_.pop_front();
}

std::vector<double> RuntimeEstimator::scale_weighted(
    const std::vector<double>& raw) const {
  std::vector<double> scaled = scaler_.transform(raw);
  for (std::size_t j = 0; j < scaled.size(); ++j)
    scaled[j] *= config_.feature_weights[j];
  return scaled;
}

void RuntimeEstimator::retrain() {
  if (history_.size() < config_.min_history) return;
  auto* telem = telemetry_;
  const auto wall_start = telem ? std::chrono::steady_clock::now()
                                : std::chrono::steady_clock::time_point();
  const std::size_t window = std::min(config_.interest_window, history_.size());

  ml::Dataset data;
  data.x.reserve(window);
  data.y.reserve(window);
  for (std::size_t i = history_.size() - window; i < history_.size(); ++i) {
    data.x.push_back(history_[i].features);
    data.y.push_back(history_[i].log_runtime);
  }

  scaler_.fit(data);
  ml::Dataset scaled;
  scaled.y = data.y;
  scaled.x.reserve(data.rows());
  for (const auto& row : data.x) scaled.x.push_back(scale_weighted(row));

  std::size_t k = config_.clusters;
  if (k == 0) k = ml::elbow_select_k(scaled, 2, 20, rng_.fork());
  kmeans_ = std::make_unique<ml::KMeans>(ml::KMeansParams{.k = k}, rng_.fork());
  kmeans_->fit(scaled);

  // One SVR per cluster, trained on that cluster's members.  AEA trackers
  // restart with each generation (they grade the new models).
  std::vector<ClusterModel> fresh(kmeans_->k());
  std::vector<ml::Dataset> per_cluster(kmeans_->k());
  for (std::size_t i = 0; i < scaled.rows(); ++i)
    per_cluster[kmeans_->labels()[i]].add(scaled.x[i], scaled.y[i]);
  for (std::size_t c = 0; c < fresh.size(); ++c) {
    ml::Dataset& members = per_cluster[c];
    if (members.rows() == 0) {
      // Empty cluster: give it the global data so assign() stays safe.
      members = scaled;
    }
    fresh[c].svr = ml::Svr(config_.svr);
    fresh[c].svr.fit(members);
  }
  models_ = std::move(fresh);
  train_points_ = scaled.x;
  train_labels_ = kmeans_->labels();
  ++retrains_;
  if (telem) {
    const double wall_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - wall_start)
                               .count();
    telem->metrics.counter("predict.retrains").inc();
    telem->metrics
        .histogram("predict.retrain_ms",
                   {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000})
        .observe(wall_ms);
    telem->tracer.instant("predict-retrain", "predict",
                          {{"window", static_cast<double>(window)},
                           {"k", static_cast<double>(kmeans_->k())},
                           {"wall_ms", wall_ms}});
  }
  ESLURM_DEBUG("estimator: retrained on ", window, " jobs, k=", kmeans_->k());
}

void RuntimeEstimator::maybe_retrain(SimTime now) {
  if (last_retrain_ >= 0 && now - last_retrain_ < config_.retrain_period) return;
  if (history_.size() < config_.min_history) return;
  last_retrain_ = now;
  retrain();
}

std::optional<std::pair<SimTime, std::size_t>> RuntimeEstimator::model_predict(
    const std::vector<double>& raw_features) const {
  if (!model_ready()) return std::nullopt;
  const std::vector<double> scaled = scale_weighted(raw_features);
  const std::size_t cluster = match_cluster(scaled);
  const double log_runtime = models_[cluster].svr.predict(scaled);
  // Eq. 3: multiply by the slack to penalize underestimation.
  const double runtime_s =
      std::exp(std::clamp(log_runtime, -2.0, 20.0)) * config_.alpha;
  return std::make_pair(from_seconds(std::max(runtime_s, 1.0)), cluster);
}

std::size_t RuntimeEstimator::match_cluster(const std::vector<double>& scaled) const {
  double best = std::numeric_limits<double>::max();
  std::size_t best_label = 0;
  for (std::size_t i = 0; i < train_points_.size(); ++i) {
    const double dist = ml::squared_distance(train_points_[i], scaled);
    if (dist < best) {
      best = dist;
      best_label = train_labels_[i];
      if (best == 0.0) break;  // exact configuration match
    }
  }
  return best_label;
}

Estimate RuntimeEstimator::estimate(const sched::Job& job) const {
  Estimate out;
  const auto predicted = model_predict(encode_features(job));
  if (predicted) {
    out.model_raw = predicted->first;
    out.cluster = predicted->second;
  }

  if (!predicted) {
    // No model yet: the user estimate (or a conservative default) rules.
    out.value = job.user_estimate > 0 ? job.user_estimate : hours(1);
    return out;
  }
  if (job.user_estimate <= 0) {
    // The user gave nothing: adopt the model estimate directly.
    out.value = predicted->first;
    out.from_model = true;
    return out;
  }
  // The user gave an estimate: prefer the model only when its cluster has
  // proven itself (AEA above the gate).
  const AccuracyTracker& acc = models_[predicted->second].accuracy;
  if (acc.count() >= 5 && acc.aea() > config_.aea_gate) {
    out.value = predicted->first;
    out.from_model = true;
  } else {
    out.value = job.user_estimate;
  }
  return out;
}

double RuntimeEstimator::cluster_aea(std::size_t cluster) const {
  return cluster < models_.size() ? models_[cluster].accuracy.aea() : 0.0;
}

}  // namespace eslurm::predict
