// Runtime-prediction baselines evaluated in Fig. 11b, behind a common
// interface so the comparison bench can sweep them uniformly:
//
//   * User        -- the raw user-supplied wall limit;
//   * Last-2      -- mean of the same user's last two actual runtimes
//                    (Tsafrir, Etsion & Feitelson 2007);
//   * SVM         -- one global SVR over the sliding window, no
//                    clustering (ablates ESLURM's clustering step);
//   * RandomForest-- global RF regression over the window;
//   * IRPA        -- ensemble of RF + SVR + Bayesian ridge (Wu et al.);
//   * TRIP        -- Tobit regression over the window, treating jobs
//                    killed at their wall limit as right-censored (Fan et
//                    al., CLUSTER'17);
//   * PREP        -- per-group models keyed by the job's running path
//                    (Zhou et al., ICPP'21).  Traces carry no filesystem
//                    paths, so the application name serves as the path
//                    key -- the same equivalence class PREP's path
//                    clustering induces for single-binary HPC apps;
//   * ESLURM      -- the full framework of estimator.hpp.
#pragma once

#include <deque>
#include <memory>
#include <unordered_map>

#include "ml/forest.hpp"
#include "ml/linear.hpp"
#include "ml/svr.hpp"
#include "ml/tobit.hpp"
#include "predict/estimator.hpp"

namespace eslurm::predict {

class RuntimePredictor {
 public:
  virtual ~RuntimePredictor() = default;
  /// Observes a finished job (actual_runtime is ground truth; a job whose
  /// observed runtime hit the user limit arrives with state TimedOut).
  virtual void observe(const sched::Job& completed) = 0;
  /// Predicts the runtime of an incoming job.
  virtual SimTime predict(const sched::Job& incoming) = 0;
  /// Periodic retraining hook (no-op for stateless predictors).
  virtual void maybe_retrain(SimTime /*now*/) {}
  virtual const char* name() const = 0;
};

/// Factory for every predictor of Fig. 11b, keyed by name: "user",
/// "last2", "svm", "rf", "irpa", "trip", "prep", "eslurm".
std::unique_ptr<RuntimePredictor> make_predictor(const std::string& name,
                                                 std::uint64_t seed = 7);
/// All predictor names in the order Fig. 11b lists them.
std::vector<std::string> predictor_names();

class UserEstimatePredictor final : public RuntimePredictor {
 public:
  void observe(const sched::Job&) override {}
  SimTime predict(const sched::Job& incoming) override;
  const char* name() const override { return "user"; }
};

class Last2Predictor final : public RuntimePredictor {
 public:
  void observe(const sched::Job& completed) override;
  SimTime predict(const sched::Job& incoming) override;
  const char* name() const override { return "last2"; }

 private:
  std::unordered_map<std::string, std::pair<SimTime, SimTime>> last_two_;
};

/// Shared scaffolding for the window-trained global models.
///
/// `target_encoding` replaces the hashed identity features by running
/// per-name / per-user mean log-runtimes -- the style of engineered
/// feature the IRPA and TRIP papers use, and a necessity for their
/// linear components (a hashed label carries no linear signal).
class WindowedModelPredictor : public RuntimePredictor {
 public:
  WindowedModelPredictor(std::size_t window, SimTime retrain_period,
                         bool target_encoding = false);
  void observe(const sched::Job& completed) override;
  SimTime predict(const sched::Job& incoming) override;
  void maybe_retrain(SimTime now) override;

 protected:
  struct Sample {
    std::vector<double> features;
    double log_runtime;
    bool censored;  ///< ran into its wall limit
  };

  std::vector<double> make_features(const sched::Job& job) const;
  /// Refits the concrete model on the scaled window.
  virtual void fit(const ml::Dataset& scaled, const std::vector<bool>& censored) = 0;
  /// Predicts log-runtime for scaled features.
  virtual double predict_log(const std::vector<double>& scaled) const = 0;
  virtual bool fitted() const = 0;

  std::size_t window_;
  SimTime retrain_period_;
  bool target_encoding_;
  SimTime last_retrain_ = -1;
  std::deque<Sample> history_;
  ml::StandardScaler scaler_;

 private:
  struct RunningMean {
    double sum = 0.0;
    std::size_t n = 0;
    double mean(double fallback) const {
      return n ? sum / static_cast<double>(n) : fallback;
    }
  };
  /// Live means accumulate with every completion; prediction uses the
  /// snapshot taken at the last retrain (batch semantics: these are
  /// batch-trained frameworks, so the whole model -- including its
  /// feature statistics -- refreshes on the training cadence).
  std::unordered_map<std::string, RunningMean> name_mean_;
  std::unordered_map<std::string, RunningMean> user_mean_;
  RunningMean global_mean_;
  std::unordered_map<std::string, RunningMean> frozen_name_mean_;
  std::unordered_map<std::string, RunningMean> frozen_user_mean_;
  RunningMean frozen_global_mean_;
};

class SvmPredictor final : public WindowedModelPredictor {
 public:
  explicit SvmPredictor(std::size_t window = 700);
  const char* name() const override { return "svm"; }

 protected:
  void fit(const ml::Dataset& scaled, const std::vector<bool>& censored) override;
  double predict_log(const std::vector<double>& scaled) const override;
  bool fitted() const override { return svr_.trained(); }

 private:
  ml::Svr svr_;
};

class RandomForestPredictor final : public WindowedModelPredictor {
 public:
  explicit RandomForestPredictor(std::size_t window = 700, std::uint64_t seed = 7);
  const char* name() const override { return "rf"; }

 protected:
  void fit(const ml::Dataset& scaled, const std::vector<bool>& censored) override;
  double predict_log(const std::vector<double>& scaled) const override;
  bool fitted() const override { return forest_ && forest_->trained(); }

 private:
  std::uint64_t seed_;
  std::unique_ptr<ml::RandomForest> forest_;
};

class IrpaPredictor final : public WindowedModelPredictor {
 public:
  explicit IrpaPredictor(std::size_t window = 700, std::uint64_t seed = 7);
  const char* name() const override { return "irpa"; }

 protected:
  void fit(const ml::Dataset& scaled, const std::vector<bool>& censored) override;
  double predict_log(const std::vector<double>& scaled) const override;
  bool fitted() const override { return trained_; }

 private:
  std::uint64_t seed_;
  bool trained_ = false;
  std::unique_ptr<ml::RandomForest> forest_;
  ml::Svr svr_;
  ml::BayesianRidge ridge_;
};

class TripPredictor final : public WindowedModelPredictor {
 public:
  explicit TripPredictor(std::size_t window = 700);
  const char* name() const override { return "trip"; }

 protected:
  void fit(const ml::Dataset& scaled, const std::vector<bool>& censored) override;
  double predict_log(const std::vector<double>& scaled) const override;
  bool fitted() const override { return tobit_.trained(); }

 private:
  ml::TobitRegression tobit_;
};

class PrepPredictor final : public RuntimePredictor {
 public:
  void observe(const sched::Job& completed) override;
  SimTime predict(const sched::Job& incoming) override;
  const char* name() const override { return "prep"; }

 private:
  struct Group {
    std::deque<double> recent_runtimes;  ///< seconds, capped window
  };
  std::unordered_map<std::string, Group> groups_;
  std::deque<double> global_recent_;
};

class EslurmPredictor final : public RuntimePredictor {
 public:
  explicit EslurmPredictor(EstimatorConfig config = {}, std::uint64_t seed = 7);
  void observe(const sched::Job& completed) override;
  SimTime predict(const sched::Job& incoming) override;
  void maybe_retrain(SimTime now) override { estimator_.maybe_retrain(now); }
  const char* name() const override { return "eslurm"; }

  RuntimeEstimator& estimator() { return estimator_; }

 private:
  RuntimeEstimator estimator_;
};

}  // namespace eslurm::predict
