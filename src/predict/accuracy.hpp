// Estimation-accuracy metrics of the record module (Eqs. 4-5) and the
// evaluation metrics of Section VII-E (AEA, underestimation rate).
#pragma once

#include <cstddef>

#include "util/time.hpp"

namespace eslurm::predict {

/// Eq. 4: EA = t_p/t_r if t_p < t_r else t_r/t_p; in (0, 1], 1 = exact.
double estimation_accuracy(SimTime predicted, SimTime actual);

/// Streaming AEA / underestimation-rate accumulator (Eq. 5).
class AccuracyTracker {
 public:
  void add(SimTime predicted, SimTime actual);

  std::size_t count() const { return n_; }
  /// Eq. 5: mean per-job estimation accuracy.
  double aea() const { return n_ ? ea_sum_ / static_cast<double>(n_) : 0.0; }
  /// Fraction of jobs whose runtime was underestimated (t_p < t_r).
  double underestimate_rate() const {
    return n_ ? static_cast<double>(under_) / static_cast<double>(n_) : 0.0;
  }

 private:
  std::size_t n_ = 0;
  std::size_t under_ = 0;
  double ea_sum_ = 0.0;
};

}  // namespace eslurm::predict
