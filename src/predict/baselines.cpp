#include "predict/baselines.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace eslurm::predict {
namespace {

constexpr double kLogClampLo = -2.0, kLogClampHi = 20.0;

SimTime from_log_seconds(double log_s) {
  return from_seconds(std::exp(std::clamp(log_s, kLogClampLo, kLogClampHi)));
}

SimTime fallback_estimate(const sched::Job& job) {
  return job.user_estimate > 0 ? job.user_estimate : hours(1);
}

double median_of(std::deque<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

}  // namespace

// ---------------------------------------------------------------- factory

std::vector<std::string> predictor_names() {
  return {"user", "svm", "rf", "last2", "irpa", "trip", "prep", "eslurm"};
}

std::unique_ptr<RuntimePredictor> make_predictor(const std::string& name,
                                                 std::uint64_t seed) {
  if (name == "user") return std::make_unique<UserEstimatePredictor>();
  if (name == "last2") return std::make_unique<Last2Predictor>();
  if (name == "svm") return std::make_unique<SvmPredictor>();
  if (name == "rf") return std::make_unique<RandomForestPredictor>(700, seed);
  if (name == "irpa") return std::make_unique<IrpaPredictor>(700, seed);
  if (name == "trip") return std::make_unique<TripPredictor>();
  if (name == "prep") return std::make_unique<PrepPredictor>();
  if (name == "eslurm") return std::make_unique<EslurmPredictor>(EstimatorConfig{}, seed);
  throw std::invalid_argument("make_predictor: unknown predictor '" + name + "'");
}

// ------------------------------------------------------------------- user

SimTime UserEstimatePredictor::predict(const sched::Job& incoming) {
  return fallback_estimate(incoming);
}

// ------------------------------------------------------------------ last2

void Last2Predictor::observe(const sched::Job& completed) {
  if (completed.actual_runtime <= 0) return;
  auto& [prev, last] = last_two_[completed.user];
  prev = last;
  last = completed.actual_runtime;
}

SimTime Last2Predictor::predict(const sched::Job& incoming) {
  const auto it = last_two_.find(incoming.user);
  if (it == last_two_.end()) return fallback_estimate(incoming);
  const auto [prev, last] = it->second;
  if (last <= 0) return fallback_estimate(incoming);
  if (prev <= 0) return last;
  return (prev + last) / 2;
}

// --------------------------------------------------------- windowed models

WindowedModelPredictor::WindowedModelPredictor(std::size_t window,
                                               SimTime retrain_period,
                                               bool target_encoding)
    : window_(window), retrain_period_(retrain_period),
      target_encoding_(target_encoding) {}

std::vector<double> WindowedModelPredictor::make_features(const sched::Job& job) const {
  if (!target_encoding_) return encode_features(job);
  const double fallback = frozen_global_mean_.mean(std::log(3600.0));
  const auto name_it = frozen_name_mean_.find(job.name);
  const auto user_it = frozen_user_mean_.find(job.user);
  const double hour = static_cast<double>(hour_of_day(job.submit_time));
  const double angle = hour / 24.0 * 2.0 * M_PI;
  return {
      name_it != frozen_name_mean_.end() ? name_it->second.mean(fallback) : fallback,
      user_it != frozen_user_mean_.end() ? user_it->second.mean(fallback) : fallback,
      std::log2(static_cast<double>(std::max(job.nodes, 1))),
      std::log2(static_cast<double>(std::max(job.cores, 1))),
      std::sin(angle),
      std::cos(angle),
  };
}

void WindowedModelPredictor::observe(const sched::Job& completed) {
  if (completed.actual_runtime <= 0) return;
  Sample sample;
  // Features are captured *before* updating the running means so the
  // training row reflects what would have been known at prediction time.
  sample.features = make_features(completed);
  sample.log_runtime = std::log(to_seconds(completed.actual_runtime));
  sample.censored = completed.state == sched::JobState::TimedOut;
  history_.push_back(std::move(sample));
  if (history_.size() > window_ * 4) history_.pop_front();
  if (target_encoding_) {
    name_mean_[completed.name].sum += sample.log_runtime;
    ++name_mean_[completed.name].n;
    user_mean_[completed.user].sum += sample.log_runtime;
    ++user_mean_[completed.user].n;
    global_mean_.sum += sample.log_runtime;
    ++global_mean_.n;
  }
}

void WindowedModelPredictor::maybe_retrain(SimTime now) {
  if (last_retrain_ >= 0 && now - last_retrain_ < retrain_period_) return;
  if (history_.size() < 40) return;
  last_retrain_ = now;

  // Snapshot the target-encoding statistics: training rows and serving
  // both see the means as of this refresh (batch semantics).
  if (target_encoding_) {
    frozen_name_mean_ = name_mean_;
    frozen_user_mean_ = user_mean_;
    frozen_global_mean_ = global_mean_;
  }

  const std::size_t take = std::min(window_, history_.size());
  ml::Dataset data;
  std::vector<bool> censored;
  for (std::size_t i = history_.size() - take; i < history_.size(); ++i) {
    data.add(history_[i].features, history_[i].log_runtime);
    censored.push_back(history_[i].censored);
  }
  scaler_.fit(data);
  fit(scaler_.transform(data), censored);
}

SimTime WindowedModelPredictor::predict(const sched::Job& incoming) {
  if (!fitted()) return fallback_estimate(incoming);
  const auto scaled = scaler_.transform(make_features(incoming));
  return from_log_seconds(predict_log(scaled));
}

// -------------------------------------------------------------------- svm

SvmPredictor::SvmPredictor(std::size_t window)
    : WindowedModelPredictor(window, hours(15)),
      svr_(ml::SvrParams{.kernel = ml::Kernel::Rbf, .c = 10.0, .epsilon = 0.05,
                         .max_sweeps = 60}) {}

void SvmPredictor::fit(const ml::Dataset& scaled, const std::vector<bool>&) {
  svr_ = ml::Svr(svr_.params());
  svr_.fit(scaled);
}

double SvmPredictor::predict_log(const std::vector<double>& scaled) const {
  return svr_.predict(scaled);
}

// --------------------------------------------------------------------- rf

RandomForestPredictor::RandomForestPredictor(std::size_t window, std::uint64_t seed)
    : WindowedModelPredictor(window, hours(15)), seed_(seed) {}

void RandomForestPredictor::fit(const ml::Dataset& scaled, const std::vector<bool>&) {
  forest_ = std::make_unique<ml::RandomForest>(ml::ForestParams{.n_trees = 30},
                                               Rng(seed_));
  forest_->fit(scaled);
}

double RandomForestPredictor::predict_log(const std::vector<double>& scaled) const {
  return forest_->predict(scaled);
}

// ------------------------------------------------------------------- irpa

IrpaPredictor::IrpaPredictor(std::size_t window, std::uint64_t seed)
    : WindowedModelPredictor(window, hours(15), /*target_encoding=*/true),
      seed_(seed),
      svr_(ml::SvrParams{.kernel = ml::Kernel::Rbf, .c = 10.0, .epsilon = 0.05,
                         .max_sweeps = 60}) {}

void IrpaPredictor::fit(const ml::Dataset& scaled, const std::vector<bool>&) {
  forest_ = std::make_unique<ml::RandomForest>(ml::ForestParams{.n_trees = 25},
                                               Rng(seed_));
  forest_->fit(scaled);
  svr_ = ml::Svr(svr_.params());
  svr_.fit(scaled);
  ridge_ = ml::BayesianRidge();
  ridge_.fit(scaled);
  trained_ = true;
}

double IrpaPredictor::predict_log(const std::vector<double>& scaled) const {
  // Integrated learning: equal-weight average of the three regressors.
  return (forest_->predict(scaled) + svr_.predict(scaled) + ridge_.predict(scaled)) / 3.0;
}

// ------------------------------------------------------------------- trip

TripPredictor::TripPredictor(std::size_t window)
    : WindowedModelPredictor(window, hours(15), /*target_encoding=*/true),
      tobit_(ml::TobitParams{.max_iters = 800, .learning_rate = 0.08}) {}

void TripPredictor::fit(const ml::Dataset& scaled, const std::vector<bool>& censored) {
  ml::CensoredDataset cd;
  cd.data = scaled;
  cd.censored = censored;
  tobit_ = ml::TobitRegression(ml::TobitParams{.max_iters = 800, .learning_rate = 0.08});
  tobit_.fit_censored(cd);
}

double TripPredictor::predict_log(const std::vector<double>& scaled) const {
  return tobit_.predict(scaled);
}

// ------------------------------------------------------------------- prep

void PrepPredictor::observe(const sched::Job& completed) {
  if (completed.actual_runtime <= 0) return;
  const double runtime_s = to_seconds(completed.actual_runtime);
  Group& group = groups_[completed.name];
  group.recent_runtimes.push_back(runtime_s);
  if (group.recent_runtimes.size() > 64) group.recent_runtimes.pop_front();
  global_recent_.push_back(runtime_s);
  if (global_recent_.size() > 1024) global_recent_.pop_front();
}

SimTime PrepPredictor::predict(const sched::Job& incoming) {
  const auto it = groups_.find(incoming.name);
  if (it != groups_.end() && it->second.recent_runtimes.size() >= 2)
    return from_seconds(median_of(it->second.recent_runtimes));
  if (!global_recent_.empty()) return from_seconds(median_of(global_recent_));
  return fallback_estimate(incoming);
}

// ----------------------------------------------------------------- eslurm

EslurmPredictor::EslurmPredictor(EstimatorConfig config, std::uint64_t seed)
    : estimator_(config, Rng(seed)) {}

void EslurmPredictor::observe(const sched::Job& completed) {
  estimator_.record_completion(completed);
}

SimTime EslurmPredictor::predict(const sched::Job& incoming) {
  // Fig. 11b grades the estimation *framework*, so report the model
  // output once one exists; the AEA-gated blend with the user estimate
  // (Estimate::value) is the scheduler-facing policy, not the model.
  const Estimate est = estimator_.estimate(incoming);
  return est.model_raw > 0 ? est.model_raw : est.value;
}

}  // namespace eslurm::predict
