#include "predict/features.hpp"

#include <cmath>

#include "util/strings.hpp"

namespace eslurm::predict {
namespace {
double hash01(const std::string& s, char salt) {
  // FNV-1a has weak high-bit avalanche for strings differing only in a
  // trailing character ("app1" vs "app3" land ~1e-7 apart), so mix the
  // hash through a splitmix64-style finalizer before taking the top
  // bits.
  std::uint64_t h = fnv1a(salt + s);
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}
}  // namespace

std::vector<double> encode_features(const sched::Job& job) {
  const double hour = static_cast<double>(hour_of_day(job.submit_time));
  const double angle = hour / 24.0 * 2.0 * M_PI;
  return {
      hash01(job.name, 'a'),
      hash01(job.name, 'b'),
      hash01(job.user, 'a'),
      hash01(job.user, 'b'),
      std::log2(static_cast<double>(std::max(job.nodes, 1))),
      std::log2(static_cast<double>(std::max(job.cores, 1))),
      std::sin(angle),
      std::cos(angle),
  };
}

}  // namespace eslurm::predict
