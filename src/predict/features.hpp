// Job feature extraction (Table IV of the paper): job name, user name,
// required nodes, required cores, and the submission hour.
//
// String features are stably hashed into *two* independent [0, 1)
// coordinates: equal strings coincide exactly (distance 0) while
// distinct strings land far apart with overwhelming probability -- a
// single hashed dimension would place unrelated app names arbitrarily
// close, which misleads centroid- and kernel-based models.  Node and
// core counts are log-scaled (job sizes span four orders of magnitude).
// The submission hour is embedded on the unit circle so 23:00 and 00:00
// are neighbours.
#pragma once

#include <vector>

#include "sched/job.hpp"

namespace eslurm::predict {

inline constexpr std::size_t kFeatureCount = 8;

/// Encodes the Table-IV features of a job into a numeric vector:
/// [name_h1, name_h2, user_h1, user_h2, log2(nodes), log2(cores),
///  sin(hour), cos(hour)].
std::vector<double> encode_features(const sched::Job& job);

}  // namespace eslurm::predict
