// The ESLURM job-runtime estimation framework (Section V, Fig. 6):
//
//   * estimation model generator -- periodically takes the historical
//     jobs inside a configurable interest window (default 700 jobs),
//     clusters them with K-means++ in the Table-IV feature space, and
//     trains one SVR model per cluster (on log-runtime);
//   * real-time estimation module -- event driven: encodes a newly
//     submitted job, matches the closest cluster, predicts with that
//     cluster's model, multiplies by the slack alpha (Eq. 3, default
//     1.05), and falls back to the user's estimate unless the cluster's
//     AEA clears the 90% gate (or the user gave no estimate at all);
//   * record module -- event driven: on job completion, appends the job
//     to the history queue and updates the cluster's AEA (Eqs. 4-5).
#pragma once

#include <array>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "ml/kmeans.hpp"
#include "ml/scaler.hpp"
#include "ml/svr.hpp"
#include "predict/accuracy.hpp"
#include "predict/features.hpp"
#include "util/rng.hpp"

namespace eslurm::telemetry {
struct Telemetry;
}  // namespace eslurm::telemetry

namespace eslurm::predict {

struct EstimatorConfig {
  std::size_t interest_window = 700;   ///< jobs per retraining set
  SimTime retrain_period = hours(15);  ///< paper default
  std::size_t clusters = 15;           ///< K; 0 selects K by the elbow method
  double alpha = 1.05;                 ///< Eq. 3 slack multiplier
  double aea_gate = 0.90;              ///< model-vs-user-estimate gate
  std::size_t min_history = 50;        ///< jobs before the first model
  std::size_t max_history = 20000;     ///< history queue bound
  /// Post-standardization feature weights (Table-IV order: name x2,
  /// user x2, log nodes, log cores, hour-sin, hour-cos).  Identity
  /// features (job name, user) dominate both the clustering and the
  /// kernel: HPC runtime locality is mostly "same app resubmitted"
  /// (Fig. 5b/c).
  std::array<double, kFeatureCount> feature_weights{8.0, 8.0, 4.0, 4.0,
                                                    1.0, 1.0, 0.3, 0.3};
  ml::SvrParams svr{.kernel = ml::Kernel::Rbf,
                    .c = 50.0,
                    .epsilon = 0.02,
                    .gamma = 0.1,
                    .max_sweeps = 80};
};

struct Estimate {
  SimTime value = 0;        ///< what the scheduler should use
  SimTime model_raw = 0;    ///< model output incl. slack, 0 if no model
  bool from_model = false;  ///< false -> user estimate (or default) used
  std::size_t cluster = SIZE_MAX;
};

class RuntimeEstimator {
 public:
  /// The estimator has no engine of its own, so the owning RM injects
  /// its telemetry context (nullptr when off).
  explicit RuntimeEstimator(EstimatorConfig config = {}, Rng rng = Rng(4242),
                            telemetry::Telemetry* telemetry = nullptr);

  /// Record module: called when a job completes with its actual runtime.
  /// Also refreshes the AEA of the cluster the job maps to.
  void record_completion(const sched::Job& job);

  /// Model generator: rebuilds clusters + per-cluster SVRs from the
  /// interest window.  No-op until `min_history` jobs were recorded.
  void retrain();

  /// Drives periodic retraining from simulated time; call at (or after)
  /// submission/completion events.  Retrains at most once per period.
  void maybe_retrain(SimTime now);

  bool model_ready() const { return !models_.empty(); }
  std::size_t cluster_count() const { return models_.size(); }

  /// Real-time estimation module (Eq. 3 + the AEA gate).
  Estimate estimate(const sched::Job& job) const;

  double cluster_aea(std::size_t cluster) const;
  /// Overall AEA / UR of the model predictions made so far (Section
  /// VII-E metrics, used by Table VIII and Fig. 11b).
  const AccuracyTracker& model_accuracy() const { return model_accuracy_; }

  const EstimatorConfig& config() const { return config_; }
  std::size_t history_size() const { return history_.size(); }
  std::uint64_t retrain_count() const { return retrains_; }

 private:
  struct HistoricJob {
    std::vector<double> features;
    double log_runtime = 0.0;
  };
  struct ClusterModel {
    ml::Svr svr;
    AccuracyTracker accuracy;
  };

  /// Predicts the slacked runtime for encoded features; returns nullopt
  /// when no model exists yet.
  std::optional<std::pair<SimTime, std::size_t>> model_predict(
      const std::vector<double>& raw_features) const;

  /// Standardizes then applies the configured feature weights.
  std::vector<double> scale_weighted(const std::vector<double>& raw) const;

  /// Closest-cluster matching for a scaled feature vector.  Uses the
  /// nearest *training sample*'s cluster rather than the nearest
  /// centroid: hashed identity features make centroid geometry
  /// meaningless for configurations the clustering split across
  /// boundaries, while the nearest sample always belongs to the model
  /// that actually trained on that configuration.
  std::size_t match_cluster(const std::vector<double>& scaled) const;

  EstimatorConfig config_;
  Rng rng_;
  telemetry::Telemetry* telemetry_ = nullptr;
  std::deque<HistoricJob> history_;
  ml::StandardScaler scaler_;
  std::unique_ptr<ml::KMeans> kmeans_;
  std::vector<std::vector<double>> train_points_;  ///< scaled window rows
  std::vector<std::size_t> train_labels_;
  std::vector<ClusterModel> models_;
  AccuracyTracker model_accuracy_;
  SimTime last_retrain_ = -1;
  std::uint64_t retrains_ = 0;
};

}  // namespace eslurm::predict
