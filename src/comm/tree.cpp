#include "comm/tree.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "util/log.hpp"

namespace eslurm::comm {

std::vector<Range> partition_range(std::size_t begin, std::size_t end, int width) {
  std::vector<Range> groups;
  const std::size_t len = end - begin;
  if (len == 0) return groups;
  if (width < 1) throw std::invalid_argument("partition_range: width must be >= 1");
  const std::size_t g = std::min<std::size_t>(static_cast<std::size_t>(width), len);
  const std::size_t base = len / g;
  const std::size_t rem = len % g;
  std::size_t cursor = begin;
  groups.reserve(g);
  for (std::size_t i = 0; i < g; ++i) {
    const std::size_t take = base + (i < rem ? 1 : 0);
    groups.push_back(Range{cursor, cursor + take});
    cursor += take;
  }
  return groups;
}

int tree_depth_estimate(std::size_t n, int width) {
  int depth = 0;
  std::size_t remaining = n;
  const auto w = static_cast<std::size_t>(std::max(2, width));
  while (remaining > 0) {
    ++depth;
    remaining /= w;
  }
  return depth;
}

TreeBroadcaster::TreeBroadcaster(net::Network& network, std::string name,
                                 net::ReliableTransport* transport)
    : Broadcaster(network, std::move(name), transport) {
  relay_type_ = alloc_type_range(2);
  done_type_ = relay_type_ + 1;
  for (NodeId node = 0; node < net_.node_count(); ++node) {
    register_relay_handler(node, relay_type_,
                           [this, node](const net::Message& m) { on_relay(node, m); });
    register_relay_handler(node, done_type_,
                           [this, node](const net::Message& m) { on_done(node, m); });
  }
}

std::shared_ptr<const std::vector<NodeId>> TreeBroadcaster::prepare(
    std::shared_ptr<const std::vector<NodeId>> targets, const BroadcastOptions&) {
  return targets;
}

void TreeBroadcaster::broadcast(NodeId root,
                                std::shared_ptr<const std::vector<NodeId>> targets,
                                const BroadcastOptions& options, Callback done) {
  auto state = std::make_shared<State>();
  state->id = next_broadcast_id_++;
  state->root = root;
  state->list = prepare(std::move(targets), options);
  state->opts = options;
  state->done = std::move(done);
  state->started = net_.engine().now();
  state->delivered.assign(net_.node_count(), false);
  active_.emplace(state->id, state);

  NodeCtx& ctx = state->ctx[root];
  ctx.self = root;
  ctx.parent = net::kNoNode;
  fan_out(*state, ctx, Range{0, state->list->size()});
  maybe_finish_node(*state, ctx);
}

void TreeBroadcaster::fan_out(State& state, NodeCtx& ctx, Range range) {
  const auto groups = partition_range(range.begin, range.end, state.opts.tree_width);
  // Create every slot before issuing any send so `pending` can never dip
  // to zero while work remains.
  const std::size_t first_slot = ctx.slots.size();
  for (const Range& group : groups) {
    ChildSlot slot;
    slot.child = (*state.list)[group.begin];
    slot.subtree = Range{group.begin + 1, group.end};
    ctx.slots.push_back(slot);
    ++ctx.pending;
  }
  for (std::size_t i = 0; i < groups.size(); ++i)
    attempt_child(state, ctx, first_slot + i, state.opts.retries);
}

void TreeBroadcaster::attempt_child(State& state, NodeCtx& ctx, std::size_t slot_index,
                                    int attempts_left) {
  const std::uint64_t id = state.id;
  const NodeId self = ctx.self;
  const ChildSlot& slot = ctx.slots[slot_index];
  net::Message msg;
  msg.type = relay_type_;
  // The relay carries the payload plus the serialized subtree list.
  msg.bytes = state.opts.payload_bytes + 8 * slot.subtree.size();
  msg.payload = RelayBody{id, slot.subtree};
  relay_send(self, slot.child, std::move(msg), state.opts.timeout,
             [this, id, self, slot_index, attempts_left](bool ok) {
              const auto it = active_.find(id);
              if (it == active_.end()) return;  // broadcast already finished
              State& st = *it->second;
              NodeCtx& c = st.ctx[self];
              ChildSlot& s = c.slots[slot_index];
              if (s.done) return;
              if (ok) {
                // Accepted: arm a completion watchdog scaled to the
                // subtree's depth; if the child dies mid-relay its whole
                // subtree is adopted when this fires.
                const int depth = tree_depth_estimate(s.subtree.size() + 1,
                                                      st.opts.tree_width);
                // contact_budget covers the transport's retransmit
                // schedule (== timeout raw), so a watchdog never fires
                // while a descendant is still legitimately retrying.
                const SimTime deadline =
                    contact_budget(st.opts.timeout) * (st.opts.retries + 1) * (depth + 1);
                s.watchdog = net_.engine().schedule_after(
                    deadline, [this, id, self, slot_index] {
                      const auto it2 = active_.find(id);
                      if (it2 == active_.end()) return;
                      State& st2 = *it2->second;
                      NodeCtx& c2 = st2.ctx[self];
                      ChildSlot& s2 = c2.slots[slot_index];
                      if (s2.done) return;
                      ESLURM_DEBUG("tree: watchdog adoption of subtree under node ",
                                   s2.child);
                      ++c2.agg_repairs;
                      ++total_repairs_;
                      adopt_subtree(st2, c2, s2.subtree);
                      child_finished(st2, c2, slot_index, /*unreachable=*/1,
                                     /*repairs=*/0);
                    });
                return;
              }
              if (attempts_left > 1) {
                record_retry();
                attempt_child(st, c, slot_index, attempts_left - 1);
                return;
              }
              // Child unreachable: adopt its subtree directly.
              if (s.subtree.size() > 0) {
                ++c.agg_repairs;
                ++total_repairs_;
                adopt_subtree(st, c, s.subtree);
              }
              child_finished(st, c, slot_index, /*unreachable=*/1, /*repairs=*/0);
            });
}

void TreeBroadcaster::adopt_subtree(State& state, NodeCtx& ctx, Range subtree) {
  if (subtree.size() == 0) return;
  fan_out(state, ctx, subtree);
}

void TreeBroadcaster::child_finished(State& state, NodeCtx& ctx, std::size_t slot_index,
                                     std::size_t unreachable, int repairs) {
  ChildSlot& slot = ctx.slots[slot_index];
  if (slot.done) return;
  slot.done = true;
  if (slot.watchdog != sim::kInvalidEvent) {
    net_.engine().cancel(slot.watchdog);
    slot.watchdog = sim::kInvalidEvent;
  }
  ctx.agg_unreachable += unreachable;
  ctx.agg_repairs += repairs;
  assert(ctx.pending > 0);
  --ctx.pending;
  maybe_finish_node(state, ctx);
}

void TreeBroadcaster::maybe_finish_node(State& state, NodeCtx& ctx) {
  if (ctx.pending > 0 || ctx.done_sent) return;
  ctx.done_sent = true;
  if (ctx.parent == net::kNoNode) {
    finish_root(state, ctx);
    return;
  }
  net::Message msg;
  msg.type = done_type_;
  msg.bytes = 64;
  msg.payload = DoneBody{state.id, ctx.agg_unreachable, ctx.agg_repairs};
  relay_send(ctx.self, ctx.parent, std::move(msg), state.opts.timeout);
}

void TreeBroadcaster::finish_root(State& state, NodeCtx& ctx) {
  BroadcastResult result;
  result.broadcast_id = state.id;
  result.started = state.started;
  result.finished = net_.engine().now();
  result.targets = state.list->size();
  result.delivered = static_cast<std::size_t>(
      std::count(state.delivered.begin(), state.delivered.end(), true));
  result.unreachable = ctx.agg_unreachable;
  result.repairs = ctx.agg_repairs;
  record_result(result);
  const std::uint64_t id = state.id;
  if (state.done) state.done(result);
  active_.erase(id);
}

void TreeBroadcaster::on_relay(NodeId self, const net::Message& msg) {
  const auto& body = msg.body<RelayBody>();
  const auto it = active_.find(body.broadcast_id);
  if (it == active_.end()) return;
  State& state = *it->second;
  if (state.delivered[self]) {
    // Duplicate relay from an adoption: acknowledge completion without
    // re-relaying (the original relay is already covering the subtree).
    net::Message done_msg;
    done_msg.type = done_type_;
    done_msg.bytes = 64;
    done_msg.payload = DoneBody{state.id, 0, 0};
    relay_send(self, msg.src, std::move(done_msg), state.opts.timeout);
    return;
  }
  mark_delivered(state.id, state.delivered, self);
  NodeCtx& ctx = state.ctx[self];
  ctx.self = self;
  ctx.parent = msg.src;
  fan_out(state, ctx, body.subtree);
  maybe_finish_node(state, ctx);
}

void TreeBroadcaster::on_done(NodeId self, const net::Message& msg) {
  const auto& body = msg.body<DoneBody>();
  const auto it = active_.find(body.broadcast_id);
  if (it == active_.end()) return;
  State& state = *it->second;
  const auto ctx_it = state.ctx.find(self);
  if (ctx_it == state.ctx.end()) return;
  NodeCtx& ctx = ctx_it->second;
  // Match the first unfinished slot for this child.
  for (std::size_t i = 0; i < ctx.slots.size(); ++i) {
    if (!ctx.slots[i].done && ctx.slots[i].child == msg.src) {
      child_finished(state, ctx, i, body.unreachable, body.repairs);
      return;
    }
  }
}

}  // namespace eslurm::comm
