// Star broadcast: the root contacts every target directly, the pattern of
// naive centralized RMs.  The root drives at most `star_slots` concurrent
// connections (a realistic dispatch thread pool); each dead target holds
// a slot for `retries * timeout`, which is why the structure collapses as
// the failure ratio grows (Fig. 8b).
#pragma once

#include <unordered_map>

#include "comm/broadcaster.hpp"

namespace eslurm::comm {

class StarBroadcaster final : public Broadcaster {
 public:
  explicit StarBroadcaster(net::Network& network, std::string name = "star");

  void broadcast(NodeId root, std::shared_ptr<const std::vector<NodeId>> targets,
                 const BroadcastOptions& options, Callback done) override;
  using Broadcaster::broadcast;

 private:
  struct State {
    std::uint64_t id = 0;
    NodeId root = net::kNoNode;
    std::shared_ptr<const std::vector<NodeId>> list;
    BroadcastOptions opts;
    Callback done;
    SimTime started = 0;
    std::vector<bool> delivered;
    std::size_t next = 0;        ///< next target index to start
    std::size_t in_flight = 0;
    std::size_t unreachable = 0;
    std::size_t completed = 0;
  };

  void pump(State& state);
  /// `service_paid`: whether the root's per-target service time has
  /// already been spent for this attempt.
  void attempt(State& state, std::size_t index, int attempts_left,
               bool service_paid = false);
  void finish(State& state);

  net::MessageType payload_type_;
  std::unordered_map<std::uint64_t, std::shared_ptr<State>> active_;
};

}  // namespace eslurm::comm
