#include "comm/topology_aware.hpp"

namespace eslurm::comm {

double cross_rack_fraction(const net::Topology& topology,
                           const std::vector<NodeId>& list, int tree_width) {
  if (list.empty()) return 0.0;
  std::size_t hops = 0, cross = 0;
  // Walk the same recursion the live tree uses; count parent->child hops.
  std::vector<Range> stack{Range{0, list.size()}};
  std::vector<NodeId> parents{net::kNoNode};  // root is rack-external
  while (!stack.empty()) {
    const Range range = stack.back();
    stack.pop_back();
    const NodeId parent = parents.back();
    parents.pop_back();
    for (const Range& group : partition_range(range.begin, range.end, tree_width)) {
      const NodeId child = list[group.begin];
      if (parent != net::kNoNode) {
        ++hops;
        if (topology.rack_of(parent) != topology.rack_of(child)) ++cross;
      }
      if (group.size() > 1) {
        stack.push_back(Range{group.begin + 1, group.end});
        parents.push_back(child);
      }
    }
  }
  return hops ? static_cast<double>(cross) / static_cast<double>(hops) : 0.0;
}

TopologyTreeBroadcaster::TopologyTreeBroadcaster(net::Network& network,
                                                 const net::Topology& topology,
                                                 std::string name)
    : TreeBroadcaster(network, std::move(name)), topology_(topology) {}

std::shared_ptr<const std::vector<NodeId>> TopologyTreeBroadcaster::prepare(
    std::shared_ptr<const std::vector<NodeId>> targets, const BroadcastOptions&) {
  return std::make_shared<const std::vector<NodeId>>(
      topology_.topology_order(*targets));
}

TopologyFpTreeBroadcaster::TopologyFpTreeBroadcaster(
    net::Network& network, const net::Topology& topology,
    const cluster::FailurePredictor& predictor, std::string name)
    : TreeBroadcaster(network, std::move(name)),
      topology_(topology),
      predictor_(predictor) {}

std::shared_ptr<const std::vector<NodeId>> TopologyFpTreeBroadcaster::prepare(
    std::shared_ptr<const std::vector<NodeId>> targets,
    const BroadcastOptions& options) {
  RearrangeStats stats;
  auto tuned = std::make_shared<const std::vector<NodeId>>(rearrange_nodelist(
      topology_.topology_order(*targets), options.tree_width, predictor_, &stats));
  cumulative_.predicted += stats.predicted;
  cumulative_.predicted_on_leaf += stats.predicted_on_leaf;
  cumulative_.leaf_slots += stats.leaf_slots;
  return tuned;
}

}  // namespace eslurm::comm
