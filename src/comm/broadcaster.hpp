// Broadcast-structure interface (Section IV / Fig. 8b of the paper).
//
// A Broadcaster delivers one control message (job-load, job-terminate,
// heartbeat ...) from a root node to a set of target nodes over the
// simulated network, tolerating target failures.  Five implementations
// mirror the structures the paper evaluates: ring, star, shared-memory,
// k-ary tree, and the FP-Tree (failure-prediction-rearranged tree).
//
// Failure semantics shared by all implementations: a send to a dead node
// is detected only after `timeout`; `retries` connection attempts are
// made before a peer is declared unreachable (the paper sets 3).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "net/transport.hpp"

namespace eslurm::comm {

using net::NodeId;

/// Message-type space reserved for communication structures (100-199).
/// Each Broadcaster instance takes a distinct stride (allocated from its
/// network) so several structures can coexist on the same nodes.
inline constexpr net::MessageType kCommTypeBase = net::kDynamicTypeBase;

struct BroadcastOptions {
  std::size_t payload_bytes = 512;  ///< control messages are small
  SimTime timeout = seconds(1);     ///< dead-peer detection threshold
  int retries = 3;                  ///< connection attempts per peer
  int tree_width = 50;              ///< k-ary fan-out (Slurm default 50)
  std::size_t star_slots = 16;      ///< concurrent connections at a star root
  /// Root-side service time per target (star only): session setup /
  /// fork-exec work a master performs per contacted node.  This is what
  /// makes sequential-dispatch RMs collapse as job size grows (Fig. 7f).
  SimTime root_service_time = 0;
  SimTime shm_poll_interval = seconds(2);  ///< shared-memory fetch cadence
};

struct BroadcastResult {
  std::uint64_t broadcast_id = 0;
  SimTime started = 0;
  SimTime finished = 0;
  std::size_t targets = 0;      ///< requested target count
  std::size_t delivered = 0;    ///< distinct targets that got the payload
  std::size_t unreachable = 0;  ///< targets declared dead
  int repairs = 0;              ///< tree re-parenting events

  SimTime elapsed() const { return finished - started; }
};

class Broadcaster {
 public:
  using Callback = std::function<void(const BroadcastResult&)>;
  /// Called once per target node when the payload reaches it.
  using DeliveryHook = std::function<void(NodeId node, std::uint64_t broadcast_id)>;

  /// With a `transport`, all control traffic (relay + completion
  /// messages) is sent and received through the reliable channel:
  /// transient message loss is retried below the tree's own retry logic,
  /// and duplicated relays are suppressed by the dedup window before they
  /// reach the forwarding handlers.  The transport must outlive the
  /// broadcaster; nullptr (default) keeps raw Network::send semantics and
  /// bit-identical behaviour.
  explicit Broadcaster(net::Network& network, std::string name,
                       net::ReliableTransport* transport = nullptr);
  virtual ~Broadcaster() = default;
  Broadcaster(const Broadcaster&) = delete;
  Broadcaster& operator=(const Broadcaster&) = delete;

  /// Starts a broadcast; the callback fires exactly once, when every
  /// target has been delivered or declared unreachable.  `targets` must
  /// not contain `root`.
  virtual void broadcast(NodeId root, std::shared_ptr<const std::vector<NodeId>> targets,
                         const BroadcastOptions& options, Callback done) = 0;

  /// Convenience overload taking the target list by value.
  void broadcast(NodeId root, std::vector<NodeId> targets,
                 const BroadcastOptions& options, Callback done);

  void set_delivery_hook(DeliveryHook hook) { delivery_hook_ = std::move(hook); }

  const std::string& name() const { return name_; }
  net::Network& network() { return net_; }
  net::ReliableTransport* transport() { return transport_; }

 protected:
  /// Allocates this instance's private message-type range.
  net::MessageType alloc_type_range(int width);

  /// Handler registration / send routed through the reliable transport
  /// when one is attached, raw Network otherwise.  Implementations use
  /// these for their control traffic so one construction argument flips
  /// the whole structure between lossy and reliable delivery.
  void register_relay_handler(NodeId node, net::MessageType type, net::Handler handler);
  void relay_send(NodeId from, NodeId to, net::Message msg, SimTime timeout,
                  net::SendCallback on_complete = {});

  /// Worst-case duration of one relay_send against an unresponsive peer:
  /// `timeout` raw, the transport's full retransmit schedule otherwise.
  /// Watchdogs must scale with this or they fire mid-retransmit.
  SimTime contact_budget(SimTime timeout) const;

  /// Telemetry tap: every implementation calls this once per finished
  /// broadcast (latency histogram + counters labeled by structure name,
  /// and a trace span covering the broadcast).  No-op when telemetry is
  /// disabled.
  void record_result(const BroadcastResult& result);

  /// Telemetry tap for a failed send attempt that will be retried.
  void record_retry();

  /// Records a delivery in the per-broadcast bitmap (idempotent) and
  /// fires the delivery hook for first-time deliveries.  Returns true if
  /// this was the first delivery to that node.
  bool mark_delivered(std::uint64_t broadcast_id, std::vector<bool>& bitmap, NodeId node);

  net::Network& net_;
  /// The world's telemetry context (via the network's engine); nullptr
  /// when telemetry is off.  Cached at construction like every other
  /// instrumented subsystem.
  telemetry::Telemetry* telemetry_;
  net::ReliableTransport* transport_ = nullptr;
  std::string name_;
  DeliveryHook delivery_hook_;
  std::uint64_t next_broadcast_id_ = 1;
};

}  // namespace eslurm::comm
