// K-ary communication tree with timeout-based fault repair -- the
// structure Slurm-style RMs use for fan-out, and the base the FP-Tree
// rearranges (Section IV-B).
//
// Construction rule (identical to the paper's): a node that receives the
// contiguous node-list range [b, e) splits it into min(width, len) near-
// equal groups; the first element of each group becomes a child and the
// rest of the group is that child's subtree range.  Because every node
// applies the same rule, a node's position in the flat list fully
// determines its position in the tree -- which is exactly what lets the
// FP-Tree relocate likely-to-fail nodes by rearranging the list.
//
// Fault tolerance: a child that does not accept the relay within
// `timeout` is retried `retries` times, then declared unreachable and its
// subtree is *adopted* by the parent (re-partitioned among new children).
// A child that accepts but never reports completion is caught by a
// watchdog sized to the subtree depth, and its subtree is adopted too.
#pragma once

#include <memory>
#include <unordered_map>

#include "comm/broadcaster.hpp"

namespace eslurm::comm {

/// Contiguous slice of a broadcast node list.
struct Range {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t size() const { return end - begin; }
};

/// Splits [begin, end) into min(width, len) contiguous near-equal groups
/// (earlier groups take the remainder).  Shared by the live broadcaster
/// and the FP-Tree leaf locator so both see the same tree shape.
std::vector<Range> partition_range(std::size_t begin, std::size_t end, int width);

/// Tree depth estimate used to size completion watchdogs.
int tree_depth_estimate(std::size_t n, int width);

class TreeBroadcaster : public Broadcaster {
 public:
  /// `transport` (optional) routes relay/done traffic through a reliable
  /// channel -- see Broadcaster.
  explicit TreeBroadcaster(net::Network& network, std::string name = "tree",
                           net::ReliableTransport* transport = nullptr);

  void broadcast(NodeId root, std::shared_ptr<const std::vector<NodeId>> targets,
                 const BroadcastOptions& options, Callback done) override;
  using Broadcaster::broadcast;

  /// Number of subtree adoptions across all finished broadcasts.
  std::uint64_t total_repairs() const { return total_repairs_; }

 protected:
  /// Hook for the FP-Tree: returns the (possibly rearranged) node list to
  /// build the tree from.  Default: identity.
  virtual std::shared_ptr<const std::vector<NodeId>> prepare(
      std::shared_ptr<const std::vector<NodeId>> targets, const BroadcastOptions& options);

 private:
  struct ChildSlot {
    NodeId child = net::kNoNode;
    Range subtree;
    bool done = false;
    sim::EventId watchdog = sim::kInvalidEvent;
  };
  struct NodeCtx {
    NodeId self = net::kNoNode;
    NodeId parent = net::kNoNode;  ///< kNoNode marks the root
    std::vector<ChildSlot> slots;
    std::size_t pending = 0;
    bool done_sent = false;
    // Subtree aggregates reported upward with the completion message.
    std::size_t agg_unreachable = 0;
    int agg_repairs = 0;
  };
  struct State {
    std::uint64_t id = 0;
    NodeId root = net::kNoNode;
    std::shared_ptr<const std::vector<NodeId>> list;
    BroadcastOptions opts;
    Callback done;
    SimTime started = 0;
    std::vector<bool> delivered;  ///< indexed by node id
    std::unordered_map<NodeId, NodeCtx> ctx;
  };

  struct RelayBody {
    std::uint64_t broadcast_id;
    Range subtree;
  };
  struct DoneBody {
    std::uint64_t broadcast_id;
    std::size_t unreachable;
    int repairs;
  };

  void on_relay(NodeId self, const net::Message& msg);
  void on_done(NodeId self, const net::Message& msg);
  void fan_out(State& state, NodeCtx& ctx, Range range);
  void attempt_child(State& state, NodeCtx& ctx, std::size_t slot_index, int attempts_left);
  void adopt_subtree(State& state, NodeCtx& ctx, Range subtree);
  void child_finished(State& state, NodeCtx& ctx, std::size_t slot_index,
                      std::size_t unreachable, int repairs);
  void maybe_finish_node(State& state, NodeCtx& ctx);
  void finish_root(State& state, NodeCtx& ctx);

  net::MessageType relay_type_;
  net::MessageType done_type_;
  std::unordered_map<std::uint64_t, std::shared_ptr<State>> active_;
  std::uint64_t total_repairs_ = 0;
};

}  // namespace eslurm::comm
