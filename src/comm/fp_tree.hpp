// FP-Tree: the failure-prediction-based communication tree (Section IV).
//
// The FP-Tree Constructor of Fig. 3/4 has three components:
//   1. failure-node prediction  -> a cluster::FailurePredictor plugin;
//   2. leaf-node location       -> simulate the grouping recursion
//      (Eq. 2, Theta(n)) to find which positions of the flat node list
//      become leaves of the tree;
//   3. node-list rearranging    -> O(n) pass that fills leaf positions
//      from the predicted-failed set first and non-leaf positions from
//      the healthy set first.
// The rearranged list is then broadcast through the ordinary k-ary tree,
// so a predicted-failed node can only ever stall itself, never a subtree.
#pragma once

#include "cluster/monitoring.hpp"
#include "comm/tree.hpp"

namespace eslurm::comm {

/// Simulates the tree-construction recursion on a list of n nodes and
/// returns, for each list position, whether it ends up a leaf.
/// Runs in Theta(n) (Eq. 2 of the paper, via the master theorem).
std::vector<bool> locate_leaf_positions(std::size_t n, int width);

struct RearrangeStats {
  std::size_t predicted = 0;          ///< predicted-failed nodes in the list
  std::size_t predicted_on_leaf = 0;  ///< of those, placed on leaf positions
  std::size_t leaf_slots = 0;         ///< leaf positions available
  /// Ground-truth accounting (when a truth oracle is provided): nodes
  /// that really are failed at construction time, and how many of them
  /// ended up on leaves.  This is the paper's Section VII-A metric
  /// (81.7%): unpredicted failures land on leaves only by chance.
  std::size_t failed_encountered = 0;
  std::size_t failed_on_leaf = 0;

  double leaf_placement_ratio() const {
    return predicted ? static_cast<double>(predicted_on_leaf) /
                           static_cast<double>(predicted)
                     : 1.0;
  }
  double failed_leaf_ratio() const {
    return failed_encountered ? static_cast<double>(failed_on_leaf) /
                                    static_cast<double>(failed_encountered)
                              : 1.0;
  }
};

/// Rearranges `list` so predicted-failed nodes land on leaf positions.
/// Order is stable within the healthy and predicted subsets, preserving
/// any topology-aware ordering of the input (Section IV-E).
std::vector<NodeId> rearrange_nodelist(const std::vector<NodeId>& list, int width,
                                       const cluster::FailurePredictor& predictor,
                                       RearrangeStats* stats = nullptr);

class FpTreeBroadcaster final : public TreeBroadcaster {
 public:
  /// `transport` (optional) routes relay/done traffic through a reliable
  /// channel -- see Broadcaster.
  FpTreeBroadcaster(net::Network& network, const cluster::FailurePredictor& predictor,
                    std::string name = "fp-tree",
                    net::ReliableTransport* transport = nullptr);

  /// Optional instrumentation: an oracle for nodes that are *really*
  /// failed (or failing), used only to fill the ground-truth fields of
  /// the cumulative stats.  Never consulted for the rearrangement.
  void set_ground_truth(std::function<bool(NodeId)> is_failed) {
    ground_truth_ = std::move(is_failed);
  }

  /// Aggregate rearrangement statistics over all broadcasts (drives the
  /// 81.7%-of-failed-nodes-on-leaves result of Section VII-A).
  const RearrangeStats& cumulative_stats() const { return cumulative_; }
  std::uint64_t trees_constructed() const { return trees_; }

 protected:
  std::shared_ptr<const std::vector<NodeId>> prepare(
      std::shared_ptr<const std::vector<NodeId>> targets,
      const BroadcastOptions& options) override;

 private:
  const cluster::FailurePredictor& predictor_;
  std::function<bool(NodeId)> ground_truth_;
  RearrangeStats cumulative_;
  std::uint64_t trees_ = 0;
};

}  // namespace eslurm::comm
