// FP-Tree: the failure-prediction-based communication tree (Section IV).
//
// The FP-Tree Constructor of Fig. 3/4 has three components:
//   1. failure-node prediction  -> a cluster::FailurePredictor plugin;
//   2. leaf-node location       -> simulate the grouping recursion
//      (Eq. 2, Theta(n)) to find which positions of the flat node list
//      become leaves of the tree;
//   3. node-list rearranging    -> O(n) pass that fills leaf positions
//      from the predicted-failed set first and non-leaf positions from
//      the healthy set first.
// The rearranged list is then broadcast through the ordinary k-ary tree,
// so a predicted-failed node can only ever stall itself, never a subtree.
//
// Incremental maintenance: the RM broadcasts the *same* participation
// lists round after round (a satellite's contiguous slice of the compute
// pool), so rebuilding the whole Theta(n) arrangement per broadcast is
// wasted work.  FpTreeBroadcaster caches each recurring list; when a
// prediction flips, only the affected output positions are rewritten --
// the predicted tail of the leaf sequence plus the healthy ranks between
// the flipped node's old slot and the leaf boundary -- O(|predicted| +
// |rank shift|) instead of Theta(n).  A debug-mode assert checks the
// incremental result against a from-scratch rebuild after every update.
// Requires a predictor that fires change hooks (supports_change_hooks);
// anyone else gets the classic full rebuild per broadcast.
#pragma once

#include <memory>
#include <unordered_map>

#include "cluster/monitoring.hpp"
#include "comm/tree.hpp"

namespace eslurm::comm {

/// Simulates the tree-construction recursion on a list of n nodes and
/// returns, for each list position, whether it ends up a leaf.
/// Runs in Theta(n) (Eq. 2 of the paper, via the master theorem).
std::vector<bool> locate_leaf_positions(std::size_t n, int width);

/// Precomputed leaf geometry of an (n, width) tree, shared by every
/// cached list of the same shape: the per-position leaf flags, each leaf
/// position's rank among leaves, and the ascending leaf-position index.
struct LeafLayout {
  std::vector<bool> leaf;                 ///< position -> is a leaf
  std::vector<std::uint32_t> leaf_rank;   ///< valid where leaf[pos]
  std::vector<std::uint32_t> leaf_pos;    ///< ascending leaf positions
  std::size_t leaf_slots() const { return leaf_pos.size(); }
};

/// Builds (or copies nothing and just computes) the layout for n, width.
LeafLayout build_leaf_layout(std::size_t n, int width);

struct RearrangeStats {
  std::size_t predicted = 0;          ///< predicted-failed nodes in the list
  std::size_t predicted_on_leaf = 0;  ///< of those, placed on leaf positions
  std::size_t leaf_slots = 0;         ///< leaf positions available
  /// Ground-truth accounting (when a truth oracle is provided): nodes
  /// that really are failed at construction time, and how many of them
  /// ended up on leaves.  This is the paper's Section VII-A metric
  /// (81.7%): unpredicted failures land on leaves only by chance.
  std::size_t failed_encountered = 0;
  std::size_t failed_on_leaf = 0;

  double leaf_placement_ratio() const {
    return predicted ? static_cast<double>(predicted_on_leaf) /
                           static_cast<double>(predicted)
                     : 1.0;
  }
  double failed_leaf_ratio() const {
    return failed_encountered ? static_cast<double>(failed_on_leaf) /
                                    static_cast<double>(failed_encountered)
                              : 1.0;
  }
};

/// Rearranges `list` so predicted-failed nodes land on leaf positions.
/// Order is stable within the healthy and predicted subsets, preserving
/// any topology-aware ordering of the input (Section IV-E).
std::vector<NodeId> rearrange_nodelist(const std::vector<NodeId>& list, int width,
                                       const cluster::FailurePredictor& predictor,
                                       RearrangeStats* stats = nullptr);

/// Incrementally-maintained FP arrangement of one fixed node list.
/// Exposed for tests and benches; FpTreeBroadcaster manages a cache of
/// these keyed by list content.  The output is always bit-identical to
/// rearrange_nodelist(base, width, predictor) for the flip history
/// applied so far.
class IncrementalFpList {
 public:
  /// Builds from scratch (Theta(n)): splits `base` into healthy and
  /// predicted queues per `predictor` and fills the output.  `layout`
  /// must outlive the list and match (base.size(), width).
  IncrementalFpList(std::vector<NodeId> base, const LeafLayout* layout,
                    const cluster::FailurePredictor& predictor);

  /// Applies one prediction flip.  Nodes not in the list are ignored.
  /// Regime A (predicted <= leaf slots, the operational norm) costs
  /// O(|predicted| + |rank shift|); crossing into or out of the
  /// pathological regime (more predicted than leaf slots) falls back to
  /// one O(n) refill that still reuses the cached layout and queues.
  void apply_flip(NodeId node, bool now_predicted);

  /// True if `node` is a member of the base list.
  bool contains(NodeId node) const { return index_of_.count(node) > 0; }

  /// False if the base list held duplicate ids (such a list cannot be
  /// flip-tracked by node id; callers should fall back to full rebuilds).
  bool well_formed() const { return index_of_.size() == base_.size(); }

  const std::vector<NodeId>& base() const { return base_; }
  std::size_t predicted_count() const { return pred_seq_.size(); }
  const LeafLayout& layout() const { return *layout_; }

  /// Current arrangement statistics (exact, O(1) in regime A).
  RearrangeStats stats() const { return stats_; }

  /// The current output; copy-on-write, so callers may hold the returned
  /// pointer across later flips and keep a stable snapshot.
  std::shared_ptr<const std::vector<NodeId>> out();
  /// Monotonic version, bumped on every output change.
  std::uint64_t out_version() const { return out_version_; }

 private:
  void refill();  ///< O(n) output rebuild from the queues (regime B path)
  void write_healthy_ranks(std::size_t lo, std::size_t hi);
  std::vector<NodeId>& mutable_out();

  std::vector<NodeId> base_;
  const LeafLayout* layout_;
  std::unordered_map<NodeId, std::uint32_t> index_of_;
  std::vector<bool> pred_;                  ///< per base index
  std::vector<std::uint32_t> healthy_seq_;  ///< ascending base indices
  std::vector<std::uint32_t> pred_seq_;     ///< ascending base indices
  std::shared_ptr<std::vector<NodeId>> out_;
  std::uint64_t out_version_ = 0;
  bool regime_b_ = false;  ///< predicted > leaf slots: closed form invalid
  RearrangeStats stats_;
};

class FpTreeBroadcaster final : public TreeBroadcaster {
 public:
  /// `transport` (optional) routes relay/done traffic through a reliable
  /// channel -- see Broadcaster.  If the predictor supports change
  /// hooks, one is registered here; the predictor must not fire hooks
  /// after this broadcaster is destroyed.
  FpTreeBroadcaster(net::Network& network, const cluster::FailurePredictor& predictor,
                    std::string name = "fp-tree",
                    net::ReliableTransport* transport = nullptr);

  /// Optional instrumentation: an oracle for nodes that are *really*
  /// failed (or failing), used only to fill the ground-truth fields of
  /// the cumulative stats.  Never consulted for the rearrangement.
  /// `epoch` (optional) reports a counter that changes whenever the
  /// oracle's answers may have changed (e.g. ClusterModel::state_epoch);
  /// with it, unchanged rounds reuse the cached ground-truth counts
  /// instead of re-probing every listed node.
  void set_ground_truth(std::function<bool(NodeId)> is_failed,
                        std::function<std::uint64_t()> epoch = nullptr) {
    ground_truth_ = std::move(is_failed);
    ground_truth_epoch_ = std::move(epoch);
  }

  /// Aggregate rearrangement statistics over all broadcasts (drives the
  /// 81.7%-of-failed-nodes-on-leaves result of Section VII-A).
  const RearrangeStats& cumulative_stats() const { return cumulative_; }
  std::uint64_t trees_constructed() const { return trees_; }
  /// Of those, how many were served from the incremental cache.
  std::uint64_t trees_from_cache() const { return cache_hits_; }
  std::uint64_t incremental_updates() const { return incremental_updates_; }

  /// Lists shorter than this are rebuilt per broadcast (the rebuild is
  /// already cheap; the cache buys nothing).
  static constexpr std::size_t kMinIncrementalSize = 512;
  /// LRU capacity: must exceed the number of distinct recurring lists
  /// (one per satellite sublist per dispatch shape) or rounds thrash.
  static constexpr std::size_t kMaxCacheEntries = 64;

 protected:
  std::shared_ptr<const std::vector<NodeId>> prepare(
      std::shared_ptr<const std::vector<NodeId>> targets,
      const BroadcastOptions& options) override;

 private:
  struct CacheEntry {
    IncrementalFpList list;
    int width = 0;
    std::uint64_t list_hash = 0;
    std::uint64_t last_used = 0;
    /// Pending prediction flips delivered by the change hook, applied
    /// lazily at the next prepare() of this list.
    std::vector<std::pair<NodeId, bool>> pending;
    // Ground-truth stats cache, valid for (gt_epoch, gt_out_version).
    std::uint64_t gt_epoch = ~0ull;
    std::uint64_t gt_out_version = ~0ull;
    std::size_t gt_failed = 0;
    std::size_t gt_failed_on_leaf = 0;

    CacheEntry(std::vector<NodeId> base, const LeafLayout* layout,
               const cluster::FailurePredictor& predictor)
        : list(std::move(base), layout, predictor) {}
  };

  std::shared_ptr<const std::vector<NodeId>> prepare_full(
      const std::vector<NodeId>& targets, const BroadcastOptions& options);
  CacheEntry* lookup(const std::vector<NodeId>& targets, int width,
                     std::uint64_t hash);
  CacheEntry* insert(const std::vector<NodeId>& targets, int width,
                     std::uint64_t hash);
  const LeafLayout* layout_for(std::size_t n, int width);
  void account(const RearrangeStats& stats, CacheEntry* entry,
               const std::vector<NodeId>& out, int width, double wall_ms,
               bool from_cache);

  const cluster::FailurePredictor& predictor_;
  std::function<bool(NodeId)> ground_truth_;
  std::function<std::uint64_t()> ground_truth_epoch_;
  RearrangeStats cumulative_;
  std::uint64_t trees_ = 0;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t incremental_updates_ = 0;

  bool hooks_registered_ = false;
  std::vector<std::unique_ptr<CacheEntry>> cache_;
  std::uint64_t use_clock_ = 0;
  /// Layout registry keyed by (n, width); layouts are immutable and
  /// shared by cache entries and the ground-truth accounting.
  std::unordered_map<std::uint64_t, std::unique_ptr<LeafLayout>> layouts_;
};

}  // namespace eslurm::comm
