#include "comm/fp_tree.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>

#include "telemetry/telemetry.hpp"

namespace eslurm::comm {
namespace {

void mark_leaves(std::size_t begin, std::size_t end, int width, std::vector<bool>& leaf) {
  // Mirrors the live fan-out: each group's head becomes an internal node
  // (unless it has no subtree) and the tail recurses.
  for (const Range& group : partition_range(begin, end, width)) {
    if (group.size() == 1) {
      leaf[group.begin] = true;
    } else {
      mark_leaves(group.begin + 1, group.end, width, leaf);
    }
  }
}

std::uint64_t hash_list(const std::vector<NodeId>& list) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  for (NodeId id : list) {
    h ^= id;
    h *= 1099511628211ull;
  }
  return h;
}

constexpr double kRebuildBuckets[] = {0.001, 0.002, 0.005, 0.01, 0.02, 0.05,
                                      0.1,   0.2,   0.5,   1.0,  2.0,  5.0,
                                      10.0,  20.0,  50.0,  100.0};

}  // namespace

std::vector<bool> locate_leaf_positions(std::size_t n, int width) {
  std::vector<bool> leaf(n, false);
  mark_leaves(0, n, width, leaf);
  return leaf;
}

LeafLayout build_leaf_layout(std::size_t n, int width) {
  LeafLayout layout;
  layout.leaf = locate_leaf_positions(n, width);
  layout.leaf_rank.assign(n, 0);
  for (std::size_t pos = 0; pos < n; ++pos) {
    if (layout.leaf[pos]) {
      layout.leaf_rank[pos] = static_cast<std::uint32_t>(layout.leaf_pos.size());
      layout.leaf_pos.push_back(static_cast<std::uint32_t>(pos));
    }
  }
  return layout;
}

std::vector<NodeId> rearrange_nodelist(const std::vector<NodeId>& list, int width,
                                       const cluster::FailurePredictor& predictor,
                                       RearrangeStats* stats) {
  const std::size_t n = list.size();
  const std::vector<bool> leaf = locate_leaf_positions(n, width);

  // Split the input (stably) into healthy and predicted-failed queues.
  std::vector<NodeId> healthy, predicted;
  healthy.reserve(n);
  for (NodeId node : list)
    (predictor.predicted_failed(node) ? predicted : healthy).push_back(node);

  RearrangeStats local;
  local.predicted = predicted.size();

  std::vector<NodeId> out(n);
  std::size_t h = 0, p = 0;
  for (std::size_t pos = 0; pos < n; ++pos) {
    if (leaf[pos]) ++local.leaf_slots;
    const bool want_predicted = leaf[pos];
    NodeId chosen;
    if (want_predicted) {
      if (p < predicted.size()) {
        chosen = predicted[p++];
        ++local.predicted_on_leaf;
      } else {
        chosen = healthy[h++];
      }
    } else {
      if (h < healthy.size()) {
        chosen = healthy[h++];
      } else {
        chosen = predicted[p++];
      }
    }
    out[pos] = chosen;
  }
  if (stats) *stats = local;
  return out;
}

// ---------------------------------------------------------------------------
// IncrementalFpList
//
// Invariants (regime A, P = |pred_seq_| <= L = leaf slots):
//   * out[leaf_pos[i]] = base[pred_seq[i]] for i in [0, P): the predicted
//     queue is drained at the first P leaf positions, exactly as in
//     rearrange_nodelist (the queue cannot exhaust before rank P).
//   * every other position is a "healthy position"; listing them in
//     ascending order, the i-th holds base[healthy_seq[i]].  The healthy
//     queue cannot exhaust early because the counts match one-to-one.
//   * the healthy position of rank i has a closed form: all excluded
//     positions lie at or below F = leaf_pos[P-1], so with
//     t = F + 1 - P, rank i >= t sits at position i + P; rank i < t is
//     found by walking down from F skipping leaf positions (every leaf
//     at or below F is excluded).
// When P > L (regime B) the closed forms do not hold and every flip
// falls back to an O(n) refill that still reuses the cached layout and
// membership queues.

IncrementalFpList::IncrementalFpList(std::vector<NodeId> base, const LeafLayout* layout,
                                     const cluster::FailurePredictor& predictor)
    : base_(std::move(base)),
      layout_(layout),
      out_(std::make_shared<std::vector<NodeId>>(base_.size())) {
  const std::size_t n = base_.size();
  index_of_.reserve(n);
  pred_.resize(n);
  healthy_seq_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    index_of_.emplace(base_[i], static_cast<std::uint32_t>(i));
    const bool p = predictor.predicted_failed(base_[i]);
    pred_[i] = p;
    (p ? pred_seq_ : healthy_seq_).push_back(static_cast<std::uint32_t>(i));
  }
  regime_b_ = pred_seq_.size() > layout_->leaf_slots();
  refill();
}

std::shared_ptr<const std::vector<NodeId>> IncrementalFpList::out() { return out_; }

std::vector<NodeId>& IncrementalFpList::mutable_out() {
  // Copy-on-write: broadcasts in flight hold the previous snapshot.
  if (out_.use_count() > 1) out_ = std::make_shared<std::vector<NodeId>>(*out_);
  return *out_;
}

void IncrementalFpList::refill() {
  auto& out = mutable_out();
  const std::size_t n = base_.size();
  const auto& leaf = layout_->leaf;
  std::size_t h = 0, p = 0;
  RearrangeStats s;
  s.leaf_slots = layout_->leaf_slots();
  s.predicted = pred_seq_.size();
  for (std::size_t pos = 0; pos < n; ++pos) {
    std::uint32_t idx;
    if (leaf[pos]) {
      if (p < pred_seq_.size()) {
        idx = pred_seq_[p++];
        ++s.predicted_on_leaf;
      } else {
        idx = healthy_seq_[h++];
      }
    } else {
      if (h < healthy_seq_.size()) {
        idx = healthy_seq_[h++];
      } else {
        idx = pred_seq_[p++];
      }
    }
    out[pos] = base_[idx];
  }
  stats_ = s;
}

void IncrementalFpList::write_healthy_ranks(std::size_t lo, std::size_t hi) {
  if (lo >= hi) return;
  auto& out = mutable_out();
  const std::size_t P = pred_seq_.size();
  if (P == 0) {
    for (std::size_t i = lo; i < hi; ++i) out[i] = base_[healthy_seq_[i]];
    return;
  }
  const std::size_t F = layout_->leaf_pos[P - 1];
  const std::size_t t = F + 1 - P;
  // Ranks at or above the last excluded leaf sit contiguously at i + P.
  for (std::size_t i = std::max(lo, t); i < hi; ++i)
    out[i + P] = base_[healthy_seq_[i]];
  if (lo < t) {
    // Ranks below t interleave with excluded leaves; walk down from F
    // skipping leaf positions.  Callers only ever request ranges whose
    // upper end reaches t, so every step of the walk writes.
    const std::size_t stop = std::min(hi, t);
    std::size_t i = t;
    std::size_t pos = F;
    while (i > lo) {
      --pos;
      while (layout_->leaf[pos]) --pos;
      --i;
      if (i < stop) out[pos] = base_[healthy_seq_[i]];
    }
  }
}

void IncrementalFpList::apply_flip(NodeId node, bool now_predicted) {
  const auto it = index_of_.find(node);
  if (it == index_of_.end()) return;
  const std::uint32_t m = it->second;
  if (pred_[m] == now_predicted) return;
  pred_[m] = now_predicted;
  ++out_version_;

  std::size_t j, k;
  if (now_predicted) {
    const auto hit = std::lower_bound(healthy_seq_.begin(), healthy_seq_.end(), m);
    k = static_cast<std::size_t>(hit - healthy_seq_.begin());
    healthy_seq_.erase(hit);
    const auto pit = std::lower_bound(pred_seq_.begin(), pred_seq_.end(), m);
    j = static_cast<std::size_t>(pit - pred_seq_.begin());
    pred_seq_.insert(pit, m);
  } else {
    const auto pit = std::lower_bound(pred_seq_.begin(), pred_seq_.end(), m);
    j = static_cast<std::size_t>(pit - pred_seq_.begin());
    pred_seq_.erase(pit);
    const auto hit = std::lower_bound(healthy_seq_.begin(), healthy_seq_.end(), m);
    k = static_cast<std::size_t>(hit - healthy_seq_.begin());
    healthy_seq_.insert(hit, m);
  }

  const std::size_t P = pred_seq_.size();
  const std::size_t L = layout_->leaf_slots();
  if (regime_b_ || P > L) {
    regime_b_ = P > L;
    refill();
    return;
  }

  // Predicted ranks [j, P) shifted; rewrite their leaf slots.
  {
    auto& out = mutable_out();
    for (std::size_t i = j; i < P; ++i)
      out[layout_->leaf_pos[i]] = base_[pred_seq_[i]];
  }
  // Healthy side: the flipped node left (entered) the healthy sequence at
  // rank k, and position leaf_pos[P-1] left (leaf_pos[P] rejoined) the
  // healthy position set at rank r; contents between the two ranks shift
  // by one, everything outside is untouched.
  if (now_predicted) {
    const std::size_t r = static_cast<std::size_t>(layout_->leaf_pos[P - 1]) - P + 1;
    write_healthy_ranks(std::min(k, r), std::max(k, r));
  } else {
    const std::size_t r = static_cast<std::size_t>(layout_->leaf_pos[P]) - P;
    write_healthy_ranks(std::min(k, r), std::max(k, r) + 1);
  }
  stats_.predicted = P;
  stats_.predicted_on_leaf = P;
  stats_.leaf_slots = L;
}

// ---------------------------------------------------------------------------
// FpTreeBroadcaster

FpTreeBroadcaster::FpTreeBroadcaster(net::Network& network,
                                     const cluster::FailurePredictor& predictor,
                                     std::string name,
                                     net::ReliableTransport* transport)
    : TreeBroadcaster(network, std::move(name), transport), predictor_(predictor) {
  if (predictor_.supports_change_hooks()) {
    predictor_.add_change_hook([this](NodeId node, bool now_predicted) {
      for (const auto& entry : cache_)
        if (entry->list.contains(node)) entry->pending.emplace_back(node, now_predicted);
    });
    hooks_registered_ = true;
  }
}

std::shared_ptr<const std::vector<NodeId>> FpTreeBroadcaster::prepare(
    std::shared_ptr<const std::vector<NodeId>> targets, const BroadcastOptions& options) {
  if (!hooks_registered_ || targets->size() < kMinIncrementalSize)
    return prepare_full(*targets, options);

  const auto wall_start = std::chrono::steady_clock::now();
  const std::uint64_t hash = hash_list(*targets);
  CacheEntry* entry = lookup(*targets, options.tree_width, hash);
  const bool from_cache = entry != nullptr;
  if (entry) {
    for (const auto& [node, now_predicted] : entry->pending) {
      entry->list.apply_flip(node, now_predicted);
      ++incremental_updates_;
    }
    entry->pending.clear();
  } else {
    entry = insert(*targets, options.tree_width, hash);
    if (!entry) return prepare_full(*targets, options);  // duplicate ids
  }
  entry->last_used = ++use_clock_;
#ifndef NDEBUG
  // The incremental arrangement must be bit-identical to a from-scratch
  // rebuild under the predictor's current state.
  assert(*entry->list.out() ==
         rearrange_nodelist(entry->list.base(), options.tree_width, predictor_));
#endif
  auto out = entry->list.out();
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - wall_start)
                             .count();
  account(entry->list.stats(), entry, *out, options.tree_width, wall_ms, from_cache);
  return out;
}

std::shared_ptr<const std::vector<NodeId>> FpTreeBroadcaster::prepare_full(
    const std::vector<NodeId>& targets, const BroadcastOptions& options) {
  auto* t = telemetry_;
  const auto wall_start = t ? std::chrono::steady_clock::now()
                            : std::chrono::steady_clock::time_point();
  RearrangeStats stats;
  auto rearranged = std::make_shared<const std::vector<NodeId>>(
      rearrange_nodelist(targets, options.tree_width, predictor_, &stats));
  if (t) {
    // The constructor runs on every broadcast, so its *wall-clock* cost
    // is the quantity of interest (the sim charges it separately through
    // satellite_per_node_us).  Milliseconds, bucketed down to 1 us.
    const double wall_ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                  wall_start)
            .count();
    t->metrics
        .histogram("comm.fp_rebuild_ms",
                   {std::begin(kRebuildBuckets), std::end(kRebuildBuckets)})
        .observe(wall_ms);
    t->metrics.counter("comm.fp_rebuilds").inc();
    t->tracer.instant("fp-tree-rebuild", "comm",
                      {{"nodes", static_cast<double>(targets.size())},
                       {"predicted", static_cast<double>(stats.predicted)},
                       {"leaf_slots", static_cast<double>(stats.leaf_slots)},
                       {"wall_ms", wall_ms}});
  }
  cumulative_.predicted += stats.predicted;
  cumulative_.predicted_on_leaf += stats.predicted_on_leaf;
  cumulative_.leaf_slots += stats.leaf_slots;
  if (ground_truth_) {
    const auto leaf = locate_leaf_positions(rearranged->size(), options.tree_width);
    for (std::size_t pos = 0; pos < rearranged->size(); ++pos) {
      if (ground_truth_((*rearranged)[pos])) {
        ++cumulative_.failed_encountered;
        if (leaf[pos]) ++cumulative_.failed_on_leaf;
      }
    }
  }
  ++trees_;
  return rearranged;
}

FpTreeBroadcaster::CacheEntry* FpTreeBroadcaster::lookup(
    const std::vector<NodeId>& targets, int width, std::uint64_t hash) {
  for (const auto& entry : cache_) {
    if (entry->list_hash == hash && entry->width == width &&
        entry->list.base() == targets)
      return entry.get();
  }
  return nullptr;
}

FpTreeBroadcaster::CacheEntry* FpTreeBroadcaster::insert(
    const std::vector<NodeId>& targets, int width, std::uint64_t hash) {
  if (cache_.size() >= kMaxCacheEntries) {
    std::size_t victim = 0;
    for (std::size_t i = 1; i < cache_.size(); ++i)
      if (cache_[i]->last_used < cache_[victim]->last_used) victim = i;
    cache_.erase(cache_.begin() + static_cast<std::ptrdiff_t>(victim));
  }
  const LeafLayout* layout = layout_for(targets.size(), width);
  auto entry = std::make_unique<CacheEntry>(targets, layout, predictor_);
  if (!entry->list.well_formed()) return nullptr;
  entry->width = width;
  entry->list_hash = hash;
  cache_.push_back(std::move(entry));
  return cache_.back().get();
}

const LeafLayout* FpTreeBroadcaster::layout_for(std::size_t n, int width) {
  const std::uint64_t key = (static_cast<std::uint64_t>(n) << 16) ^
                            static_cast<std::uint64_t>(static_cast<unsigned>(width));
  auto& slot = layouts_[key];
  if (!slot) slot = std::make_unique<LeafLayout>(build_leaf_layout(n, width));
  return slot.get();
}

void FpTreeBroadcaster::account(const RearrangeStats& stats, CacheEntry* entry,
                                const std::vector<NodeId>& out, int width,
                                double wall_ms, bool from_cache) {
  (void)width;
  ++trees_;
  if (from_cache) ++cache_hits_;
  cumulative_.predicted += stats.predicted;
  cumulative_.predicted_on_leaf += stats.predicted_on_leaf;
  cumulative_.leaf_slots += stats.leaf_slots;
  if (auto* t = telemetry_) {
    t->metrics
        .histogram("comm.fp_rebuild_ms",
                   {std::begin(kRebuildBuckets), std::end(kRebuildBuckets)})
        .observe(wall_ms);
    t->metrics.counter(from_cache ? "comm.fp_cache_served" : "comm.fp_rebuilds").inc();
  }
  if (ground_truth_) {
    const std::uint64_t version = entry->list.out_version();
    bool recompute = true;
    if (ground_truth_epoch_) {
      const std::uint64_t epoch = ground_truth_epoch_();
      recompute = epoch != entry->gt_epoch || version != entry->gt_out_version;
      entry->gt_epoch = epoch;
    }
    if (recompute) {
      const auto& leaf = entry->list.layout().leaf;
      std::size_t failed = 0, on_leaf = 0;
      for (std::size_t pos = 0; pos < out.size(); ++pos) {
        if (ground_truth_(out[pos])) {
          ++failed;
          if (leaf[pos]) ++on_leaf;
        }
      }
      entry->gt_failed = failed;
      entry->gt_failed_on_leaf = on_leaf;
      entry->gt_out_version = version;
    }
    cumulative_.failed_encountered += entry->gt_failed;
    cumulative_.failed_on_leaf += entry->gt_failed_on_leaf;
  }
}

}  // namespace eslurm::comm
