#include "comm/fp_tree.hpp"

#include <chrono>

#include "telemetry/telemetry.hpp"

namespace eslurm::comm {
namespace {

void mark_leaves(std::size_t begin, std::size_t end, int width, std::vector<bool>& leaf) {
  // Mirrors the live fan-out: each group's head becomes an internal node
  // (unless it has no subtree) and the tail recurses.
  for (const Range& group : partition_range(begin, end, width)) {
    if (group.size() == 1) {
      leaf[group.begin] = true;
    } else {
      mark_leaves(group.begin + 1, group.end, width, leaf);
    }
  }
}

}  // namespace

std::vector<bool> locate_leaf_positions(std::size_t n, int width) {
  std::vector<bool> leaf(n, false);
  mark_leaves(0, n, width, leaf);
  return leaf;
}

std::vector<NodeId> rearrange_nodelist(const std::vector<NodeId>& list, int width,
                                       const cluster::FailurePredictor& predictor,
                                       RearrangeStats* stats) {
  const std::size_t n = list.size();
  const std::vector<bool> leaf = locate_leaf_positions(n, width);

  // Split the input (stably) into healthy and predicted-failed queues.
  std::vector<NodeId> healthy, predicted;
  healthy.reserve(n);
  for (NodeId node : list)
    (predictor.predicted_failed(node) ? predicted : healthy).push_back(node);

  RearrangeStats local;
  local.predicted = predicted.size();

  std::vector<NodeId> out(n);
  std::size_t h = 0, p = 0;
  for (std::size_t pos = 0; pos < n; ++pos) {
    if (leaf[pos]) ++local.leaf_slots;
    const bool want_predicted = leaf[pos];
    NodeId chosen;
    if (want_predicted) {
      if (p < predicted.size()) {
        chosen = predicted[p++];
        ++local.predicted_on_leaf;
      } else {
        chosen = healthy[h++];
      }
    } else {
      if (h < healthy.size()) {
        chosen = healthy[h++];
      } else {
        chosen = predicted[p++];
      }
    }
    out[pos] = chosen;
  }
  if (stats) *stats = local;
  return out;
}

FpTreeBroadcaster::FpTreeBroadcaster(net::Network& network,
                                     const cluster::FailurePredictor& predictor,
                                     std::string name,
                                     net::ReliableTransport* transport)
    : TreeBroadcaster(network, std::move(name), transport), predictor_(predictor) {}

std::shared_ptr<const std::vector<NodeId>> FpTreeBroadcaster::prepare(
    std::shared_ptr<const std::vector<NodeId>> targets, const BroadcastOptions& options) {
  auto* t = telemetry_;
  const auto wall_start = t ? std::chrono::steady_clock::now()
                            : std::chrono::steady_clock::time_point();
  RearrangeStats stats;
  auto rearranged = std::make_shared<const std::vector<NodeId>>(
      rearrange_nodelist(*targets, options.tree_width, predictor_, &stats));
  if (t) {
    // The constructor runs on every broadcast, so its *wall-clock* cost
    // is the quantity of interest (the sim charges it separately through
    // satellite_per_node_us).  Milliseconds, bucketed down to 1 us.
    const double wall_ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                  wall_start)
            .count();
    t->metrics
        .histogram("comm.fp_rebuild_ms",
                   {0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0,
                    5.0, 10.0, 20.0, 50.0, 100.0})
        .observe(wall_ms);
    t->metrics.counter("comm.fp_rebuilds").inc();
    t->tracer.instant("fp-tree-rebuild", "comm",
                      {{"nodes", static_cast<double>(targets->size())},
                       {"predicted", static_cast<double>(stats.predicted)},
                       {"leaf_slots", static_cast<double>(stats.leaf_slots)},
                       {"wall_ms", wall_ms}});
  }
  cumulative_.predicted += stats.predicted;
  cumulative_.predicted_on_leaf += stats.predicted_on_leaf;
  cumulative_.leaf_slots += stats.leaf_slots;
  if (ground_truth_) {
    const auto leaf = locate_leaf_positions(rearranged->size(), options.tree_width);
    for (std::size_t pos = 0; pos < rearranged->size(); ++pos) {
      if (ground_truth_((*rearranged)[pos])) {
        ++cumulative_.failed_encountered;
        if (leaf[pos]) ++cumulative_.failed_on_leaf;
      }
    }
  }
  ++trees_;
  return rearranged;
}

}  // namespace eslurm::comm
