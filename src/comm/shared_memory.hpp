// Shared-memory broadcast: the root publishes the message once to a
// high-capacity memory server (RDMA-style segment on the root in the
// paper's reproduction), and every target fetches it on its next poll
// tick.  Nobody ever waits on a dead node -- failed targets simply never
// fetch -- which is why the curve stays flat as the failure ratio grows
// (Fig. 8b).  The price is the poll latency floor on every broadcast.
#pragma once

#include <unordered_map>

#include "comm/broadcaster.hpp"

namespace eslurm::comm {

class SharedMemoryBroadcaster final : public Broadcaster {
 public:
  explicit SharedMemoryBroadcaster(net::Network& network, std::string name = "shm");

  void broadcast(NodeId root, std::shared_ptr<const std::vector<NodeId>> targets,
                 const BroadcastOptions& options, Callback done) override;
  using Broadcaster::broadcast;

 private:
  struct State {
    std::uint64_t id = 0;
    NodeId root = net::kNoNode;
    std::shared_ptr<const std::vector<NodeId>> list;
    BroadcastOptions opts;
    Callback done;
    SimTime started = 0;
    std::size_t outstanding = 0;
    std::size_t delivered = 0;
    std::size_t unreachable = 0;
  };

  void finish(State& state);

  net::MessageType fetch_type_;
  std::unordered_map<std::uint64_t, std::shared_ptr<State>> active_;
  Rng rng_;
};

}  // namespace eslurm::comm
