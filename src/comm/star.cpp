#include "comm/star.hpp"

namespace eslurm::comm {

StarBroadcaster::StarBroadcaster(net::Network& network, std::string name)
    : Broadcaster(network, std::move(name)) {
  payload_type_ = alloc_type_range(1);
  // Targets only need to accept the payload; delivery is counted via the
  // sender-side completion, and the hook fires through mark_delivered.
  for (NodeId node = 0; node < net_.node_count(); ++node)
    net_.register_handler(node, payload_type_, [](const net::Message&) {});
}

void StarBroadcaster::broadcast(NodeId root,
                                std::shared_ptr<const std::vector<NodeId>> targets,
                                const BroadcastOptions& options, Callback done) {
  auto state = std::make_shared<State>();
  state->id = next_broadcast_id_++;
  state->root = root;
  state->list = std::move(targets);
  state->opts = options;
  state->done = std::move(done);
  state->started = net_.engine().now();
  state->delivered.assign(net_.node_count(), false);
  active_.emplace(state->id, state);
  pump(*state);
  if (state->list->empty()) finish(*state);
}

void StarBroadcaster::pump(State& state) {
  while (state.in_flight < state.opts.star_slots && state.next < state.list->size()) {
    ++state.in_flight;
    attempt(state, state.next++, state.opts.retries);
  }
}

void StarBroadcaster::attempt(State& state, std::size_t index, int attempts_left,
                              bool service_paid) {
  const std::uint64_t id = state.id;
  if (state.opts.root_service_time > 0 && !service_paid) {
    // Root-side session setup occupies this slot before the wire send.
    net_.engine().schedule_after(state.opts.root_service_time,
                                 [this, id, index, attempts_left] {
                                   const auto it = active_.find(id);
                                   if (it == active_.end()) return;
                                   attempt(*it->second, index, attempts_left,
                                           /*service_paid=*/true);
                                 });
    return;
  }
  const NodeId target = (*state.list)[index];
  net::Message msg;
  msg.type = payload_type_;
  msg.bytes = state.opts.payload_bytes;
  net_.send(state.root, target, std::move(msg), state.opts.timeout,
            [this, id, index, target, attempts_left](bool ok) {
              const auto it = active_.find(id);
              if (it == active_.end()) return;
              State& st = *it->second;
              if (!ok && attempts_left > 1) {
                record_retry();
                attempt(st, index, attempts_left - 1);  // slot stays occupied
                return;
              }
              if (ok) {
                mark_delivered(st.id, st.delivered, target);
              } else {
                ++st.unreachable;
              }
              ++st.completed;
              --st.in_flight;
              if (st.completed == st.list->size()) {
                finish(st);
              } else {
                pump(st);
              }
            });
}

void StarBroadcaster::finish(State& state) {
  BroadcastResult result;
  result.broadcast_id = state.id;
  result.started = state.started;
  result.finished = net_.engine().now();
  result.targets = state.list->size();
  result.delivered = state.list->size() - state.unreachable;
  result.unreachable = state.unreachable;
  record_result(result);
  const std::uint64_t id = state.id;
  if (state.done) state.done(result);
  active_.erase(id);
}

}  // namespace eslurm::comm
