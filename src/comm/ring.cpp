#include "comm/ring.hpp"

namespace eslurm::comm {

RingBroadcaster::RingBroadcaster(net::Network& network, std::string name)
    : Broadcaster(network, std::move(name)) {
  hop_type_ = alloc_type_range(1);
  for (NodeId node = 0; node < net_.node_count(); ++node)
    net_.register_handler(node, hop_type_,
                          [this, node](const net::Message& m) { on_hop(node, m); });
}

void RingBroadcaster::broadcast(NodeId root,
                                std::shared_ptr<const std::vector<NodeId>> targets,
                                const BroadcastOptions& options, Callback done) {
  auto state = std::make_shared<State>();
  state->id = next_broadcast_id_++;
  state->root = root;
  state->list = std::move(targets);
  state->opts = options;
  state->done = std::move(done);
  state->started = net_.engine().now();
  active_.emplace(state->id, state);
  if (state->list->empty()) {
    finish(*state);
    return;
  }
  forward(*state, root, 0);
}

void RingBroadcaster::forward(State& state, NodeId from, std::size_t index) {
  if (index >= state.list->size()) {
    finish(state);
    return;
  }
  const std::uint64_t id = state.id;
  const NodeId next = (*state.list)[index];
  net::Message msg;
  msg.type = hop_type_;
  msg.bytes = state.opts.payload_bytes + 8 * (state.list->size() - index);
  msg.payload = HopBody{id, index + 1};
  net_.send(from, next, std::move(msg), state.opts.timeout,
            [this, id, from, index](bool ok) {
              const auto it = active_.find(id);
              if (it == active_.end()) return;
              State& st = *it->second;
              if (ok) return;  // receiver continues the chain
              // Dead successor: skip it and try the next node ourselves.
              ++st.unreachable;
              forward(st, from, index + 1);
            });
}

void RingBroadcaster::on_hop(NodeId self, const net::Message& msg) {
  const auto& body = msg.body<HopBody>();
  const auto it = active_.find(body.broadcast_id);
  if (it == active_.end()) return;
  State& state = *it->second;
  ++state.delivered;
  if (delivery_hook_) delivery_hook_(self, state.id);
  forward(state, self, body.next_index);
}

void RingBroadcaster::finish(State& state) {
  BroadcastResult result;
  result.broadcast_id = state.id;
  result.started = state.started;
  result.finished = net_.engine().now();
  result.targets = state.list->size();
  result.delivered = state.delivered;
  result.unreachable = state.unreachable;
  record_result(result);
  const std::uint64_t id = state.id;
  if (state.done) state.done(result);
  active_.erase(id);
}

}  // namespace eslurm::comm
