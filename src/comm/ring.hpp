// Ring broadcast: the message hops from node to node in list order.  A
// dead successor is skipped after one connection timeout (the successor
// list gives an immediate fallback, so the sender does not burn all
// retries on a host that is clearly down).  Total latency is inherently
// linear in the node count, and every failure adds a full timeout to the
// chain -- the worst curve in Fig. 8b.
#pragma once

#include <unordered_map>

#include "comm/broadcaster.hpp"

namespace eslurm::comm {

class RingBroadcaster final : public Broadcaster {
 public:
  explicit RingBroadcaster(net::Network& network, std::string name = "ring");

  void broadcast(NodeId root, std::shared_ptr<const std::vector<NodeId>> targets,
                 const BroadcastOptions& options, Callback done) override;
  using Broadcaster::broadcast;

 private:
  struct State {
    std::uint64_t id = 0;
    NodeId root = net::kNoNode;
    std::shared_ptr<const std::vector<NodeId>> list;
    BroadcastOptions opts;
    Callback done;
    SimTime started = 0;
    std::size_t delivered = 0;
    std::size_t unreachable = 0;
  };

  struct HopBody {
    std::uint64_t broadcast_id;
    std::size_t next_index;  ///< index the receiver should forward to
  };

  /// Forwards from `from` to list[index]; skips dead successors.
  void forward(State& state, NodeId from, std::size_t index);
  void on_hop(NodeId self, const net::Message& msg);
  void finish(State& state);

  net::MessageType hop_type_;
  std::unordered_map<std::uint64_t, std::shared_ptr<State>> active_;
};

}  // namespace eslurm::comm
