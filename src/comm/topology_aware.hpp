// Topology-aware tree construction and its composition with the FP-Tree
// (Section IV-E of the paper): "the communication tree can be constructed
// first using topology-aware techniques and then fine-tuned using the
// FP-Tree constructor.  This approach can reduce the impact of failed
// nodes while preserving the topology-aware properties of the tree."
//
// The composition works because the FP-Tree rearranger is *stable* within
// the healthy and predicted subsets: ordering the list by (group, rack)
// first means contiguous subtrees -- and therefore most parent->child
// hops -- stay rack-local, and the (few) predicted-failed nodes are then
// demoted to leaves without shuffling the rest.
#pragma once

#include "comm/fp_tree.hpp"
#include "net/topology.hpp"

namespace eslurm::comm {

/// Fraction of parent->child hops of the contiguous k-ary tree over
/// `list` that leave the parent's rack (diagnostic: lower is better for
/// latency).  The satellite/root is assumed rack-external, so the
/// first-level hops are not counted.
double cross_rack_fraction(const net::Topology& topology,
                           const std::vector<NodeId>& list, int tree_width);

/// Tree broadcaster that orders the node list topology-aware before
/// building (no failure prediction).
class TopologyTreeBroadcaster : public TreeBroadcaster {
 public:
  TopologyTreeBroadcaster(net::Network& network, const net::Topology& topology,
                          std::string name = "topo-tree");

 protected:
  std::shared_ptr<const std::vector<NodeId>> prepare(
      std::shared_ptr<const std::vector<NodeId>> targets,
      const BroadcastOptions& options) override;

 private:
  const net::Topology& topology_;
};

/// The Section IV-E composition: topology-aware ordering, then FP-Tree
/// fine-tuning.
class TopologyFpTreeBroadcaster : public TreeBroadcaster {
 public:
  TopologyFpTreeBroadcaster(net::Network& network, const net::Topology& topology,
                            const cluster::FailurePredictor& predictor,
                            std::string name = "topo-fp-tree");

  const RearrangeStats& cumulative_stats() const { return cumulative_; }

 protected:
  std::shared_ptr<const std::vector<NodeId>> prepare(
      std::shared_ptr<const std::vector<NodeId>> targets,
      const BroadcastOptions& options) override;

 private:
  const net::Topology& topology_;
  const cluster::FailurePredictor& predictor_;
  RearrangeStats cumulative_;
};

}  // namespace eslurm::comm
