#include "comm/shared_memory.hpp"

namespace eslurm::comm {

SharedMemoryBroadcaster::SharedMemoryBroadcaster(net::Network& network, std::string name)
    : Broadcaster(network, std::move(name)), rng_(0xE5E5E5E5ULL) {
  fetch_type_ = alloc_type_range(1);
  for (NodeId node = 0; node < net_.node_count(); ++node)
    net_.register_handler(node, fetch_type_, [](const net::Message&) {});
}

void SharedMemoryBroadcaster::broadcast(NodeId root,
                                        std::shared_ptr<const std::vector<NodeId>> targets,
                                        const BroadcastOptions& options, Callback done) {
  auto state = std::make_shared<State>();
  state->id = next_broadcast_id_++;
  state->root = root;
  state->list = std::move(targets);
  state->opts = options;
  state->done = std::move(done);
  state->started = net_.engine().now();
  active_.emplace(state->id, state);
  if (state->list->empty()) {
    finish(*state);
    return;
  }

  // Publish cost: one write of the payload into the shared segment.
  const SimTime publish_done =
      net_.engine().now() +
      static_cast<SimTime>(static_cast<double>(state->opts.payload_bytes) /
                           net_.link_model().bandwidth_bytes_per_sec * 1e9) +
      net_.link_model().base_latency;

  state->outstanding = state->list->size();
  const std::uint64_t id = state->id;
  for (const NodeId target : *state->list) {
    // Each target polls the segment independently; its next poll tick is
    // uniform within the poll interval.
    const SimTime fetch_at =
        publish_done + static_cast<SimTime>(rng_.next_double() *
                                            static_cast<double>(state->opts.shm_poll_interval));
    net_.engine().schedule_at(fetch_at, [this, id, target] {
      const auto it = active_.find(id);
      if (it == active_.end()) return;
      State& st = *it->second;
      // The fetch is a one-sided read: a dead target simply never issues
      // it; nobody on the root side blocks.
      net::Message msg;
      msg.type = fetch_type_;
      msg.bytes = st.opts.payload_bytes;
      net_.send(st.root, target, std::move(msg), st.opts.timeout,
                [this, id, target](bool ok) {
                  const auto it2 = active_.find(id);
                  if (it2 == active_.end()) return;
                  State& st2 = *it2->second;
                  if (ok) {
                    ++st2.delivered;
                    if (delivery_hook_) delivery_hook_(target, st2.id);
                  } else {
                    ++st2.unreachable;
                  }
                  if (--st2.outstanding == 0) finish(st2);
                });
    });
  }
}

void SharedMemoryBroadcaster::finish(State& state) {
  BroadcastResult result;
  result.broadcast_id = state.id;
  result.started = state.started;
  result.finished = net_.engine().now();
  result.targets = state.list->size();
  result.delivered = state.delivered;
  result.unreachable = state.unreachable;
  record_result(result);
  const std::uint64_t id = state.id;
  if (state.done) state.done(result);
  active_.erase(id);
}

}  // namespace eslurm::comm
