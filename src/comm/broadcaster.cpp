#include "comm/broadcaster.hpp"

#include "telemetry/telemetry.hpp"

namespace eslurm::comm {

Broadcaster::Broadcaster(net::Network& network, std::string name,
                         net::ReliableTransport* transport)
    : net_(network),
      telemetry_(network.engine().telemetry()),
      transport_(transport),
      name_(std::move(name)) {}

net::MessageType Broadcaster::alloc_type_range(int width) {
  // Per-network allocation keeps type assignment deterministic in
  // construction order even with several worlds in one process.
  return net_.alloc_message_types(width);
}

void Broadcaster::register_relay_handler(NodeId node, net::MessageType type,
                                         net::Handler handler) {
  if (transport_) {
    transport_->register_handler(node, type, std::move(handler));
  } else {
    net_.register_handler(node, type, std::move(handler));
  }
}

void Broadcaster::relay_send(NodeId from, NodeId to, net::Message msg,
                             SimTime timeout, net::SendCallback on_complete) {
  if (transport_) {
    transport_->send(from, to, std::move(msg), timeout, std::move(on_complete));
  } else {
    net_.send(from, to, std::move(msg), timeout, std::move(on_complete));
  }
}

SimTime Broadcaster::contact_budget(SimTime timeout) const {
  if (timeout <= 0) timeout = net_.link_model().default_timeout;
  if (!transport_) return timeout;
  return net::worst_case_send_time(transport_->options(), timeout);
}

void Broadcaster::broadcast(NodeId root, std::vector<NodeId> targets,
                            const BroadcastOptions& options, Callback done) {
  broadcast(root, std::make_shared<const std::vector<NodeId>>(std::move(targets)),
            options, std::move(done));
}

void Broadcaster::record_result(const BroadcastResult& result) {
  auto* t = telemetry_;
  if (!t) return;
  t->metrics.counter("comm.broadcasts", {{"structure", name_}}).inc();
  t->metrics.histogram("comm.broadcast_seconds", {{"structure", name_}})
      .observe(to_seconds(result.elapsed()));
  if (result.unreachable > 0)
    t->metrics.counter("comm.unreachable", {{"structure", name_}})
        .inc(static_cast<double>(result.unreachable));
  if (result.repairs > 0)
    t->metrics.counter("comm.repairs", {{"structure", name_}})
        .inc(static_cast<double>(result.repairs));
  t->tracer.complete(
      "broadcast:" + name_, "comm", result.started, result.elapsed(),
      {{"targets", static_cast<double>(result.targets)},
       {"delivered", static_cast<double>(result.delivered)},
       {"unreachable", static_cast<double>(result.unreachable)},
       {"repairs", static_cast<double>(result.repairs)}});
}

void Broadcaster::record_retry() {
  if (auto* t = telemetry_)
    t->metrics.counter("comm.send_retries", {{"structure", name_}}).inc();
}

bool Broadcaster::mark_delivered(std::uint64_t broadcast_id, std::vector<bool>& bitmap,
                                 NodeId node) {
  if (bitmap[node]) return false;
  bitmap[node] = true;
  if (delivery_hook_) delivery_hook_(node, broadcast_id);
  return true;
}

}  // namespace eslurm::comm
