#include "comm/broadcaster.hpp"

namespace eslurm::comm {
namespace {
// Process-wide allocator for per-instance message-type ranges.  Types are
// assigned deterministically in construction order.
net::MessageType g_next_type = kCommTypeBase;
}  // namespace

Broadcaster::Broadcaster(net::Network& network, std::string name)
    : net_(network), name_(std::move(name)) {}

net::MessageType Broadcaster::alloc_type_range(int width) {
  const net::MessageType base = g_next_type;
  g_next_type += width;
  return base;
}

void Broadcaster::broadcast(NodeId root, std::vector<NodeId> targets,
                            const BroadcastOptions& options, Callback done) {
  broadcast(root, std::make_shared<const std::vector<NodeId>>(std::move(targets)),
            options, std::move(done));
}

bool Broadcaster::mark_delivered(std::uint64_t broadcast_id, std::vector<bool>& bitmap,
                                 NodeId node) {
  if (bitmap[node]) return false;
  bitmap[node] = true;
  if (delivery_hook_) delivery_hook_(node, broadcast_id);
  return true;
}

}  // namespace eslurm::comm
