#include "trace/statistics.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace eslurm::trace {

std::vector<double> estimate_accuracy_samples(const std::vector<sched::Job>& jobs) {
  std::vector<double> out;
  out.reserve(jobs.size());
  for (const auto& job : jobs) {
    if (job.user_estimate <= 0 || job.actual_runtime <= 0) continue;
    out.push_back(static_cast<double>(job.user_estimate) /
                  static_cast<double>(job.actual_runtime));
  }
  return out;
}

bool jobs_correlated(const sched::Job& a, const sched::Job& b) {
  if (a.name != b.name || a.nodes != b.nodes || a.cores != b.cores) return false;
  const double ra = to_seconds(a.actual_runtime);
  const double rb = to_seconds(b.actual_runtime);
  if (ra <= 0 || rb <= 0) return false;
  const double ratio = ra / rb;
  return ratio >= 0.5 && ratio <= 2.0;
}

CorrelationCurve correlation_vs_interval(const std::vector<sched::Job>& jobs,
                                         const std::vector<double>& edges_hours) {
  CorrelationCurve curve;
  curve.bucket_upper = edges_hours;
  curve.ratio.assign(edges_hours.size(), 0.0);
  curve.pairs.assign(edges_hours.size(), 0);
  if (jobs.empty() || edges_hours.empty()) return curve;

  std::vector<std::size_t> correlated(edges_hours.size(), 0);
  const double max_hours = edges_hours.back();

  // Jobs are submit-ordered; walk forward windows.  Dense windows are
  // stride-sampled so the scan stays near-linear.
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    // Find the window extent first to pick a stride.
    std::size_t window_end = i + 1;
    while (window_end < jobs.size() &&
           to_hours(jobs[window_end].submit_time - jobs[i].submit_time) <= max_hours)
      ++window_end;
    const std::size_t window = window_end - (i + 1);
    const std::size_t stride = std::max<std::size_t>(1, window / 512);
    for (std::size_t j = i + 1; j < window_end; j += stride) {
      if (jobs[i].user != jobs[j].user) continue;
      const double gap_h = to_hours(jobs[j].submit_time - jobs[i].submit_time);
      const auto bucket = static_cast<std::size_t>(
          std::lower_bound(edges_hours.begin(), edges_hours.end(), gap_h) -
          edges_hours.begin());
      if (bucket >= edges_hours.size()) continue;
      ++curve.pairs[bucket];
      if (jobs_correlated(jobs[i], jobs[j])) ++correlated[bucket];
    }
  }
  for (std::size_t b = 0; b < edges_hours.size(); ++b)
    curve.ratio[b] = curve.pairs[b]
                         ? static_cast<double>(correlated[b]) /
                               static_cast<double>(curve.pairs[b])
                         : 0.0;
  return curve;
}

CorrelationCurve correlation_vs_id_gap(const std::vector<sched::Job>& jobs,
                                       const std::vector<std::size_t>& edges) {
  CorrelationCurve curve;
  curve.bucket_upper.reserve(edges.size());
  for (const std::size_t e : edges) curve.bucket_upper.push_back(static_cast<double>(e));
  curve.ratio.assign(edges.size(), 0.0);
  curve.pairs.assign(edges.size(), 0);
  if (jobs.empty() || edges.empty()) return curve;

  std::vector<std::size_t> correlated(edges.size(), 0);
  const std::size_t max_gap = edges.back();
  const std::size_t stride_base = std::max<std::size_t>(1, max_gap / 512);

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    for (std::size_t gap = 1; gap <= max_gap && i + gap < jobs.size();
         gap += stride_base) {
      const std::size_t j = i + gap;
      const auto bucket = static_cast<std::size_t>(
          std::lower_bound(edges.begin(), edges.end(), gap) - edges.begin());
      if (bucket >= edges.size()) continue;
      ++curve.pairs[bucket];
      if (jobs_correlated(jobs[i], jobs[j])) ++correlated[bucket];
    }
  }
  for (std::size_t b = 0; b < edges.size(); ++b)
    curve.ratio[b] = curve.pairs[b]
                         ? static_cast<double>(correlated[b]) /
                               static_cast<double>(curve.pairs[b])
                         : 0.0;
  return curve;
}

double long_job_evening_fraction(const std::vector<sched::Job>& jobs) {
  std::size_t long_jobs = 0, evening = 0;
  for (const auto& job : jobs) {
    if (job.actual_runtime <= hours(6)) continue;
    ++long_jobs;
    const int hour = hour_of_day(job.submit_time);
    if (hour >= 18) ++evening;
  }
  return long_jobs ? static_cast<double>(evening) / static_cast<double>(long_jobs) : 0.0;
}

double resubmit_within_24h_fraction(const std::vector<sched::Job>& jobs) {
  // For each job after the first day, check whether the same (user, name)
  // appeared within the preceding 24 h.
  std::unordered_map<std::string, SimTime> last_seen;
  std::size_t considered = 0, repeats = 0;
  for (const auto& job : jobs) {
    const std::string key = job.user + "/" + job.name;
    const auto it = last_seen.find(key);
    if (job.submit_time >= hours(24)) {
      ++considered;
      if (it != last_seen.end() && job.submit_time - it->second <= hours(24)) ++repeats;
    }
    last_seen[key] = job.submit_time;
  }
  return considered ? static_cast<double>(repeats) / static_cast<double>(considered)
                    : 0.0;
}

}  // namespace eslurm::trace
