// Trace statistics reproducing the analyses of Fig. 5 and Section V-A.
#pragma once

#include <vector>

#include "sched/job.hpp"

namespace eslurm::trace {

/// P = t_s / t_r per job (the Fig. 5a estimate-accuracy samples).
/// Jobs without a user estimate are skipped.
std::vector<double> estimate_accuracy_samples(const std::vector<sched::Job>& jobs);

/// Two jobs are correlated when they have the same job name, the same
/// required resources and a similar runtime (ratio within [1/2, 2]) --
/// the paper's "similar job names, required resources, and job runtime".
bool jobs_correlated(const sched::Job& a, const sched::Job& b);

struct CorrelationCurve {
  std::vector<double> bucket_upper;  ///< upper edge per bucket (hours or ids)
  std::vector<double> ratio;         ///< correlated / total pairs per bucket
  std::vector<std::size_t> pairs;    ///< pairs sampled per bucket
};

/// Correlation ratio vs submit interval (Fig. 5b).  Buckets are
/// [0,e0), [e0,e1), ... in hours.  Only same-user pairs are counted (the
/// locality the estimation framework exploits is per-user resubmission).
/// Dense windows are stride-subsampled to bound cost.
CorrelationCurve correlation_vs_interval(const std::vector<sched::Job>& jobs,
                                         const std::vector<double>& edges_hours);

/// Correlation ratio vs job-ID gap (Fig. 5c).  All pairs are counted --
/// at large ID gaps the ratio floors at the cross-user base rate.
CorrelationCurve correlation_vs_id_gap(const std::vector<sched::Job>& jobs,
                                       const std::vector<std::size_t>& edges);

/// Fraction of jobs with runtime > 6 h whose submit hour is in
/// [18, 24) -- the Section V-A observation (paper: 71.4%).
double long_job_evening_fraction(const std::vector<sched::Job>& jobs);

/// Probability that a job's (user, name) pair was also submitted by the
/// same user within the preceding 24 h (paper: 89.2%).
double resubmit_within_24h_fraction(const std::vector<sched::Job>& jobs);

}  // namespace eslurm::trace
