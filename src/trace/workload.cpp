#include "trace/workload.hpp"

namespace eslurm::trace {

WorkloadProfile tianhe2a_profile() {
  WorkloadProfile p;
  p.name = "tianhe-2a";
  p.n_users = 350;
  p.n_apps = 120;
  p.jobs_per_hour = 85.0;       // ~154K jobs over ~11 weeks (Table III)
  p.resubmit_prob = 0.88;
  p.config_churn = 0.05;        // stable veteran users -> plateau ~0.3
  p.configs_per_user_min = 1;
  p.configs_per_user_max = 2;
  p.app_zipf = 1.5;
  p.scaling_study_prob = 0.05;  // production codes run at their scale
  p.app_runtime_drift_per_day = 0.015;  // mature, slow-moving codes
  p.runtime_median_minutes = 30.0;
  p.long_job_fraction = 0.10;
  p.accurate_estimate_frac = 0.16;
  p.under_estimate_frac = 0.09;
  p.max_nodes_per_job = 2048;
  p.seed = 0x2A2A2A;
  return p;
}

WorkloadProfile ng_tianhe_profile() {
  WorkloadProfile p;
  p.name = "ng-tianhe";
  p.n_users = 200;
  p.n_apps = 160;
  p.jobs_per_hour = 12.0;       // ~52K jobs over ~6 months (Table III)
  p.resubmit_prob = 0.82;
  p.config_churn = 0.85;        // young machine, churning apps -> plateau ~0
  p.configs_per_user_min = 2;
  p.configs_per_user_max = 4;
  p.app_zipf = 0.9;             // no dominant codes yet
  p.scaling_study_prob = 0.15;  // users still sizing their runs
  p.app_runtime_drift_per_day = 0.06;  // young codes change fast
  p.runtime_median_minutes = 45.0;
  p.long_job_fraction = 0.14;
  p.accurate_estimate_frac = 0.15;
  p.under_estimate_frac = 0.08;
  p.max_nodes_per_job = 4096;
  p.seed = 0x17A9;
  return p;
}

}  // namespace eslurm::trace
