// Synthetic workload trace generator.
//
// Mechanics (see workload.hpp for the statistics being matched):
//   * each user owns a rotating set of job configurations (app name,
//     node count, characteristic runtime);
//   * arrivals are a non-homogeneous Poisson process with a diurnal rate
//     profile; a user is picked per arrival by a Zipf draw;
//   * with `resubmit_prob` the arrival repeats one of the user's recent
//     configurations with a jittered runtime; otherwise a (possibly
//     churned) configuration is used fresh;
//   * long-running apps are preferentially submitted in the evening;
//   * the user estimate is the true runtime scaled by a P drawn from the
//     mixture of Fig. 5a (mostly overestimates), rounded up to the next
//     15-minute wall-clock value, as users actually do.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "sched/job.hpp"
#include "trace/workload.hpp"
#include "util/rng.hpp"

namespace eslurm::trace {

/// One submitted job of a trace: exactly a sched::Job in Pending state.
using TraceJob = sched::Job;

/// Deterministic user -> leaf account mapping for the profile's account
/// knobs (FNV-1a, stable across platforms); "" when account_count == 0.
std::string account_for_user(const WorkloadProfile& profile,
                             const std::string& user);

/// The (account, parent) edges implied by the profile's account knobs,
/// parents first so they can be fed to AccountTree::add_account in
/// order.  Empty when account_count == 0.
std::vector<std::pair<std::string, std::string>> account_hierarchy(
    const WorkloadProfile& profile);

class TraceGenerator {
 public:
  explicit TraceGenerator(WorkloadProfile profile);

  /// Generates all jobs submitted in [0, duration), submit-time ordered,
  /// with ids 1..n in submission order.
  std::vector<TraceJob> generate(SimTime duration);

  /// Generates approximately `target_jobs` jobs by scaling the arrival
  /// rate over the given duration.
  std::vector<TraceJob> generate_jobs(std::size_t target_jobs, SimTime duration);

  const WorkloadProfile& profile() const { return profile_; }

 private:
  struct JobConfig {
    std::size_t app_index = 0;
    std::string app_name;
    int nodes = 1;
    double runtime_median_min = 30.0;
    double runtime_sigma = 0.35;  ///< within-config jitter (repeats correlate)
    double scaling_exponent = 0.0;  ///< runtime response to node changes
    bool long_job = false;
  };
  struct UserState {
    std::string name;
    std::vector<JobConfig> configs;       ///< rotating working set
    std::vector<std::size_t> recent;      ///< indexes into configs
  };

  struct AppInfo {
    std::string name;
    double median_minutes = 30.0;  ///< characteristic runtime at 8 nodes
    double scaling_exponent = 0.0; ///< runtime ~ (nodes/8)^exponent
    bool long_job = false;
  };

  JobConfig fresh_config();
  TraceJob materialize(UserState& user, const JobConfig& config, SimTime submit,
                       sched::JobId id);
  double draw_estimate_ratio();
  double diurnal_rate_multiplier(SimTime t, bool long_job) const;

  /// Multiplicative runtime drift of an app at a simulated day (random
  /// walk, lazily extended).
  double app_drift(std::size_t app_index, SimTime at);

  WorkloadProfile profile_;
  Rng rng_;
  std::vector<AppInfo> apps_;  ///< global application catalog
  std::vector<std::vector<double>> drift_;  ///< per app, per day
  Rng drift_rng_{0xD21F7};
  /// QoS tags draw from their own stream (like drift_rng_): enabling a
  /// mix never perturbs the base workload, and zero fractions draw
  /// nothing, keeping traces bit-identical to pre-policy profiles.
  Rng policy_rng_{0x905C1};
};

}  // namespace eslurm::trace
