#include "trace/generator.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

namespace eslurm::trace {
namespace {

constexpr double kMaxDiurnal = 1.5;

/// Wall-limit rounding: users request 15-minute-granular limits.
SimTime round_up_estimate(double seconds_value) {
  const double quantum = 15.0 * 60.0;
  const double rounded = std::ceil(seconds_value / quantum) * quantum;
  return from_seconds(std::max(rounded, 600.0));  // nobody requests < 10 min
}

/// FNV-1a, fixed offset/prime: std::hash is implementation-defined, and
/// the user -> account mapping must be identical across toolchains.
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

std::string account_for_user(const WorkloadProfile& profile,
                             const std::string& user) {
  if (profile.account_count == 0) return "";
  return "acct" + std::to_string(fnv1a(user) % profile.account_count);
}

std::vector<std::pair<std::string, std::string>> account_hierarchy(
    const WorkloadProfile& profile) {
  std::vector<std::pair<std::string, std::string>> edges;
  if (profile.account_count == 0) return edges;
  const bool grouped = profile.account_depth >= 2 && profile.account_count > 1;
  const std::size_t divisions =
      grouped ? std::max<std::size_t>(1, profile.account_count / 4) : 0;
  for (std::size_t d = 0; d < divisions; ++d)
    edges.emplace_back("div" + std::to_string(d), "");
  for (std::size_t k = 0; k < profile.account_count; ++k) {
    const std::string parent =
        divisions > 0 ? "div" + std::to_string(k % divisions) : "";
    edges.emplace_back("acct" + std::to_string(k), parent);
  }
  return edges;
}

TraceGenerator::TraceGenerator(WorkloadProfile profile)
    : profile_(std::move(profile)), rng_(profile_.seed) {
  // Global application catalog: the same code has a characteristic
  // runtime scale no matter who runs it (this is what makes the job name
  // a predictive feature, Table IV).
  apps_.reserve(profile_.n_apps);
  for (std::size_t a = 0; a < profile_.n_apps; ++a) {
    AppInfo app;
    app.name = "app" + std::to_string(a);
    app.long_job = rng_.chance(profile_.long_job_fraction);
    app.median_minutes =
        app.long_job
            ? rng_.uniform(6.0 * 60.0, 36.0 * 60.0)
            : profile_.runtime_median_minutes *
                  std::exp(rng_.normal(0.0, profile_.runtime_sigma));
    // How the code scales with node count: most HPC codes shrink their
    // runtime sublinearly with more nodes (strong scaling); some run
    // fixed-time larger problems (weak scaling, exponent ~0).
    app.scaling_exponent = rng_.uniform(-0.5, 0.0);
    apps_.push_back(std::move(app));
  }
  drift_.resize(apps_.size());
}

double TraceGenerator::diurnal_rate_multiplier(SimTime t, bool long_job) const {
  const int hour = hour_of_day(t);
  if (long_job) {
    // Long jobs are submitted mostly in the evening (Section V-A: 71.4%
    // of > 6 h jobs between 18:00 and 24:00).
    return (hour >= 18) ? kMaxDiurnal : 0.25;
  }
  if (hour < 7) return 0.45;   // night
  if (hour < 18) return 1.3;   // working day
  return 1.1;                  // evening
}

double TraceGenerator::app_drift(std::size_t app_index, SimTime at) {
  const auto day = static_cast<std::size_t>(at / days(1));
  auto& walk = drift_[app_index];
  while (walk.size() <= day) {
    const double prev = walk.empty() ? 1.0 : walk.back();
    walk.push_back(prev *
                   std::exp(drift_rng_.normal(0.0, profile_.app_runtime_drift_per_day)));
  }
  return walk[day];
}

TraceGenerator::JobConfig TraceGenerator::fresh_config() {
  JobConfig config;
  // Popular codes are reused by many users (Zipf over the catalog).
  const std::size_t app_index = rng_.zipf(apps_.size(), profile_.app_zipf);
  const AppInfo& app = apps_[app_index];
  config.app_index = app_index;
  config.app_name = app.name;
  // Node counts are power-of-two-ish and heavily skewed toward small.
  int max_exp = 0;
  while ((1 << (max_exp + 1)) <= profile_.max_nodes_per_job) ++max_exp;
  const auto exp_rank = rng_.zipf(static_cast<std::size_t>(max_exp) + 1,
                                  profile_.large_job_zipf);
  config.nodes = 1 << exp_rank;
  config.long_job = app.long_job;
  // A user's input deck scales the app's characteristic runtime modestly,
  // and the node count moves it along the app's scaling curve.
  config.runtime_median_min = app.median_minutes * rng_.uniform(0.85, 1.25) *
                              std::pow(config.nodes / 8.0, app.scaling_exponent);
  // Repeats of the same configuration are highly repeatable (same code,
  // same input deck): only system noise perturbs the runtime.  The
  // paper's Table VIII implies this noise is a few percent on Tianhe
  // (a 5% slack eliminates most underestimation).
  config.runtime_sigma = rng_.uniform(0.02, 0.10);
  config.scaling_exponent = app.scaling_exponent;
  return config;
}

double TraceGenerator::draw_estimate_ratio() {
  const double u = rng_.next_double();
  if (u < profile_.under_estimate_frac) return rng_.uniform(0.3, 0.9);
  if (u < profile_.under_estimate_frac + profile_.accurate_estimate_frac)
    return rng_.uniform(0.9, 1.1);
  // Overestimate: lognormal >= 1, heavy tail (users request default huge
  // limits), capped at 100x as in the Fig. 5a axis.
  const double p = std::exp(std::abs(rng_.normal(0.35, profile_.over_sigma))) + 0.1;
  return std::clamp(p, 1.1, 100.0);
}

TraceJob TraceGenerator::materialize(UserState& user,
                                                     const JobConfig& config,
                                                     SimTime submit, sched::JobId id) {
  TraceJob job;
  job.id = id;
  job.user = user.name;
  job.name = config.app_name;
  job.nodes = config.nodes;
  job.cores = config.nodes * 12;
  job.submit_time = submit;
  const double runtime_s = config.runtime_median_min * 60.0 *
                           app_drift(config.app_index, submit) *
                           std::exp(rng_.normal(0.0, config.runtime_sigma));
  job.actual_runtime = from_seconds(std::clamp(runtime_s, 10.0, 7.0 * 24 * 3600.0));
  job.user_estimate =
      round_up_estimate(to_seconds(job.actual_runtime) * draw_estimate_ratio());
  return job;
}

std::vector<TraceJob> TraceGenerator::generate(SimTime duration) {
  // Users, with Zipf-skewed activity.
  std::vector<UserState> users(profile_.n_users);
  for (std::size_t u = 0; u < users.size(); ++u) {
    users[u].name = "user" + std::to_string(u);
    const auto n_configs = static_cast<std::size_t>(rng_.uniform_int(
        profile_.configs_per_user_min, profile_.configs_per_user_max));
    for (std::size_t c = 0; c < n_configs; ++c)
      users[u].configs.push_back(fresh_config());
  }

  std::vector<TraceJob> jobs;
  const double max_rate_per_s = profile_.jobs_per_hour * kMaxDiurnal / 3600.0;
  double t = 0.0;
  const double horizon = to_seconds(duration);
  // Session follow-ups: a submission often triggers a near-term repeat of
  // the same configuration (min-heap on fire time).
  struct FollowUp {
    double at;
    std::size_t user_index;
    std::size_t config_index;
    bool operator>(const FollowUp& o) const { return at > o.at; }
  };
  std::priority_queue<FollowUp, std::vector<FollowUp>, std::greater<>> followups;

  while (true) {
    // Next event: the Poisson arrival stream or a pending follow-up.
    double t_next = t + rng_.exponential(1.0 / max_rate_per_s);
    bool is_followup = false;
    FollowUp follow{};
    if (!followups.empty() && followups.top().at < t_next) {
      follow = followups.top();
      followups.pop();
      t_next = follow.at;
      is_followup = true;
    }
    t = t_next;
    if (t >= horizon) break;
    const SimTime now = from_seconds(t);
    if (!is_followup &&
        !rng_.chance(diurnal_rate_multiplier(now, false) / kMaxDiurnal))
      continue;

    std::size_t user_index;
    std::size_t config_idx;
    if (is_followup) {
      user_index = follow.user_index;
      config_idx = follow.config_index;
    } else {
      user_index = rng_.zipf(users.size(), profile_.user_zipf);
      UserState& user = users[user_index];
      if (!user.recent.empty() && rng_.chance(profile_.resubmit_prob)) {
        // Repeat a recent configuration, biased toward the most recent
        // (HPC users iterate on what they just ran).
        const std::size_t rank = rng_.zipf(user.recent.size(), 1.0);
        config_idx = user.recent[user.recent.size() - 1 - rank];
      } else {
        config_idx = static_cast<std::size_t>(
            rng_.uniform_int(0, static_cast<std::int64_t>(user.configs.size()) - 1));
        if (rng_.chance(profile_.config_churn)) {
          // The working set churns: this configuration is replaced.
          user.configs[config_idx] = fresh_config();
        }
      }
    }
    UserState& user = users[user_index];
    JobConfig config = user.configs[config_idx];
    // Scaling studies / capacity adjustments: some submissions rerun the
    // same input deck on a different node count for this run only; the
    // runtime follows the application's scaling curve.
    if (!is_followup && rng_.chance(profile_.scaling_study_prob)) {
      const bool grow = rng_.chance(0.5) && config.nodes * 2 <= profile_.max_nodes_per_job;
      const double factor = grow ? 2.0 : 0.5;
      const int new_nodes = std::max(1, static_cast<int>(config.nodes * factor));
      config.runtime_median_min *=
          std::pow(static_cast<double>(new_nodes) / config.nodes,
                   config.scaling_exponent);
      config.nodes = new_nodes;
    }

    // Long jobs get deferred into the evening with the observed bias.
    // "Long" covers every run expected past ~6 h, not just day-scale apps.
    const bool likely_long = config.long_job || config.runtime_median_min > 240.0;
    SimTime submit = now;
    if (likely_long && hour_of_day(now) < 18 &&
        rng_.chance(profile_.long_job_evening_bias)) {
      const SimTime day_start = (now / days(1)) * days(1);
      submit = day_start + hours(18) +
               from_seconds(rng_.uniform(0.0, 6.0 * 3600.0));
      if (submit >= duration) submit = now;  // keep inside the horizon
    }

    jobs.push_back(materialize(user, config, submit, /*id=*/0));
    user.recent.push_back(config_idx);
    if (user.recent.size() > 8) user.recent.erase(user.recent.begin());

    // Spawn a session follow-up with a short gap.
    if (rng_.chance(profile_.burst_prob)) {
      followups.push(FollowUp{
          t + rng_.exponential(profile_.burst_gap_hours * 3600.0), user_index,
          config_idx});
    }
  }

  // Deferrals perturb the order; ids are assigned in final submit order.
  std::stable_sort(jobs.begin(), jobs.end(),
                   [](const TraceJob& a, const TraceJob& b) {
                     return a.submit_time < b.submit_time;
                   });
  for (std::size_t i = 0; i < jobs.size(); ++i) jobs[i].id = i + 1;

  // Policy tags ride on top of the finished trace: accounts are a pure
  // function of the user name, QoS draws come from policy_rng_ in id
  // order.  With the knobs at zero this loop changes nothing and draws
  // nothing, so the base stream (and the golden hash) is untouched.
  const bool qos_mix = profile_.qos_high_frac > 0.0 || profile_.qos_low_frac > 0.0;
  if (qos_mix || profile_.account_count > 0) {
    for (auto& job : jobs) {
      if (profile_.account_count > 0)
        job.account = account_for_user(profile_, job.user);
      if (qos_mix) {
        const double r = policy_rng_.uniform(0.0, 1.0);
        if (r < profile_.qos_high_frac)
          job.qos = "high";
        else if (r < profile_.qos_high_frac + profile_.qos_low_frac)
          job.qos = "low";
      }
    }
  }
  return jobs;
}

std::vector<TraceJob> TraceGenerator::generate_jobs(
    std::size_t target_jobs, SimTime duration) {
  // Scale the arrival rate so the expected count matches the target.
  // Session follow-ups multiply the Poisson stream by ~1/(1 - burst_prob),
  // so the base rate is discounted accordingly.
  const double hours_total = to_seconds(duration) / 3600.0;
  WorkloadProfile scaled = profile_;
  scaled.jobs_per_hour = static_cast<double>(target_jobs) / hours_total *
                         (1.0 - scaled.burst_prob);
  TraceGenerator generator(scaled);
  return generator.generate(duration);
}

}  // namespace eslurm::trace
