// Plain-text trace serialization in an SWF-inspired column format, so
// generated workloads can be persisted, inspected and replayed:
//
//   # eslurm-trace v1
//   # id submit_s runtime_s estimate_s nodes cores user name
//   1 12.500 3600.000 7200.000 64 768 user17 app42_v3
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sched/job.hpp"

namespace eslurm::trace {

void write_trace(std::ostream& os, const std::vector<sched::Job>& jobs);
std::string trace_to_string(const std::vector<sched::Job>& jobs);

/// Parses a trace; throws std::invalid_argument on malformed lines.
std::vector<sched::Job> read_trace(std::istream& is);
std::vector<sched::Job> trace_from_string(const std::string& text);

}  // namespace eslurm::trace
