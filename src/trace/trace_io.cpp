#include "trace/trace_io.hpp"

#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/strings.hpp"

namespace eslurm::trace {

void write_trace(std::ostream& os, const std::vector<sched::Job>& jobs) {
  os << "# eslurm-trace v1\n";
  os << "# id submit_s runtime_s estimate_s nodes cores user name\n";
  char buf[256];
  for (const auto& job : jobs) {
    std::snprintf(buf, sizeof(buf), "%llu %.3f %.3f %.3f %d %d %s %s\n",
                  static_cast<unsigned long long>(job.id), to_seconds(job.submit_time),
                  to_seconds(job.actual_runtime), to_seconds(job.user_estimate),
                  job.nodes, job.cores, job.user.c_str(), job.name.c_str());
    os << buf;
  }
}

std::string trace_to_string(const std::vector<sched::Job>& jobs) {
  std::ostringstream os;
  write_trace(os, jobs);
  return os.str();
}

std::vector<sched::Job> read_trace(std::istream& is) {
  std::vector<sched::Job> jobs;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const auto trimmed = trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    std::istringstream fields{std::string(trimmed)};
    sched::Job job;
    unsigned long long id = 0;
    double submit_s = 0, runtime_s = 0, estimate_s = 0;
    if (!(fields >> id >> submit_s >> runtime_s >> estimate_s >> job.nodes >>
          job.cores >> job.user >> job.name)) {
      throw std::invalid_argument("trace: malformed line " + std::to_string(line_no));
    }
    job.id = id;
    job.submit_time = from_seconds(submit_s);
    job.actual_runtime = from_seconds(runtime_s);
    job.user_estimate = from_seconds(estimate_s);
    jobs.push_back(std::move(job));
  }
  return jobs;
}

std::vector<sched::Job> trace_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_trace(is);
}

}  // namespace eslurm::trace
