// Workload profiles calibrated to the production statistics the paper
// publishes for its two trace sources (Table III, Fig. 5, Section V-A):
//
//   * 80-90% of user runtime estimates overestimate (Fig. 5a);
//   * job-correlation ratio decays with submit interval, plateauing at
//     ~0.3 for Tianhe-2A (stable users/apps after years of production)
//     and ~0 for NG-Tianhe (young machine, churning users) at 30 h
//     (Fig. 5b);
//   * job-correlation ratio vs job-ID gap stabilizes around 0.08 past a
//     gap of 700 (Fig. 5c);
//   * 71.4% of jobs needing > 6 h are submitted between 18:00 and 24:00;
//   * a user resubmits a job they ran in the past 24 h with ~89.2%
//     probability.
//
// Since the raw traces are not public, we synthesize workloads whose
// *measured* statistics match those marginals; the fig5 bench measures
// them back from the generated traces.
#pragma once

#include <cstdint>
#include <string>

#include "util/time.hpp"

namespace eslurm::trace {

struct WorkloadProfile {
  std::string name = "generic";
  std::size_t n_users = 300;
  std::size_t n_apps = 150;          ///< distinct application kinds
  double user_zipf = 0.9;            ///< user activity skew
  double jobs_per_hour = 70.0;       ///< mean arrival rate (day average)

  /// Probability that a user's next job repeats one of their recent job
  /// configurations (same name / resources, jittered runtime).
  double resubmit_prob = 0.85;
  /// Session burstiness: probability that a submission spawns a quick
  /// follow-up of the same configuration, and the mean gap to it.  This
  /// drives the high correlation at small submit intervals / ID gaps
  /// (Fig. 5b/c heads).
  double burst_prob = 0.35;
  double burst_gap_hours = 0.5;
  /// Application popularity skew; a heavier tail raises the cross-user
  /// base correlation (the Fig. 5c plateau ~0.08).
  double app_zipf = 1.35;
  /// Working-set size per user: veterans run one or two production
  /// configurations (high long-horizon correlation), newcomers juggle
  /// more.
  int configs_per_user_min = 1;
  int configs_per_user_max = 3;
  /// Probability that a submission is a scaling study / capacity
  /// adjustment (same deck, different node count, one run only).
  double scaling_study_prob = 0.10;
  /// Daily lognormal drift of each application's characteristic runtime
  /// (code updates, input-set changes).  This is what makes stale history
  /// misleading -- the mechanism behind the Fig. 5b correlation horizon.
  double app_runtime_drift_per_day = 0.02;
  /// Probability that a user's job configuration churns (is replaced by
  /// a fresh one) after each session; low churn keeps long-horizon
  /// correlation high (Tianhe-2A), high churn kills it (NG-Tianhe).
  double config_churn = 0.5;

  // Runtime distribution: lognormal, per-app parameters drawn from these.
  double runtime_median_minutes = 25.0;
  double runtime_sigma = 1.5;
  double long_job_fraction = 0.10;   ///< apps with multi-hour runtimes
  /// Evening-deferral probability for long jobs; combined with the
  /// evening arrival rate this lands near the paper's 71.4%.
  double long_job_evening_bias = 0.62;

  // User estimate behaviour (Fig. 5a): P = t_s / t_r.
  double accurate_estimate_frac = 0.16;  ///< P in [0.9, 1.1]
  double under_estimate_frac = 0.09;     ///< P < 0.9
  double over_sigma = 0.9;               ///< lognormal spread of overestimates

  // Machine shape.
  int max_nodes_per_job = 1024;
  double large_job_zipf = 1.4;       ///< node-count skew (most jobs small)

  // Policy-scenario knobs (inert at the zero defaults: no job is tagged
  // and the generated trace is bit-identical to a profile without them).
  /// QoS mix: fraction of jobs tagged "high" / "low"; the remainder keep
  /// the default class.  Tags are drawn from a dedicated RNG stream so
  /// the base workload is unchanged by the mix.
  double qos_high_frac = 0.0;
  double qos_low_frac = 0.0;
  /// Accounts: 0 leaves jobs unaccounted; otherwise each user is hashed
  /// into one of this many leaf accounts ("acct<K>").
  std::size_t account_count = 0;
  /// Hierarchy depth below root: 1 = leaves directly under root, >= 2
  /// groups leaves under division accounts ("div<D>", one per ~4 leaves).
  std::size_t account_depth = 2;

  std::uint64_t seed = 0x7ea5e;
};

/// Tianhe-2A: mature production system, stable users and applications.
WorkloadProfile tianhe2a_profile();

/// Next Generation Tianhe: young system, higher churn, larger jobs.
WorkloadProfile ng_tianhe_profile();

}  // namespace eslurm::trace
