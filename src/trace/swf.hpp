// Standard Workload Format (SWF) interoperability.
//
// SWF is the de-facto exchange format of the Parallel Workloads Archive:
// one job per line, 18 whitespace-separated fields, ';' header comments.
// Reading SWF lets the simulator replay published traces; writing lets
// generated workloads feed other simulators.
//
// Field mapping (1-based SWF field -> Job):
//    2 submit time (s)        -> submit_time
//    4 run time (s)           -> actual_runtime
//    8 requested processors   -> cores (fallback: field 5, allocated)
//    9 requested time (s)     -> user_estimate
//   12 user id                -> user ("user<id>")
//   14 executable number      -> name ("app<id>")
//   15 queue number           -> partition ("q<id>", 0/-1 -> "batch")
// nodes = ceil(cores / cores_per_node).
#pragma once

#include <iosfwd>
#include <vector>

#include "sched/job.hpp"

namespace eslurm::trace {

/// Parses SWF text; jobs with non-positive runtime or processor counts
/// (cancelled entries) are skipped.  Throws on structurally bad lines.
std::vector<sched::Job> read_swf(std::istream& is, int cores_per_node = 12);

/// Writes jobs as SWF (fields we do not model are -1).
void write_swf(std::ostream& os, const std::vector<sched::Job>& jobs,
               int cores_per_node = 12);

}  // namespace eslurm::trace
