#include "trace/swf.hpp"

#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "util/strings.hpp"

namespace eslurm::trace {

std::vector<sched::Job> read_swf(std::istream& is, int cores_per_node) {
  if (cores_per_node <= 0)
    throw std::invalid_argument("read_swf: cores_per_node must be positive");
  std::vector<sched::Job> jobs;
  std::string line;
  std::size_t line_no = 0;
  sched::JobId next_id = 1;
  while (std::getline(is, line)) {
    ++line_no;
    const auto trimmed = trim(line);
    if (trimmed.empty() || trimmed.front() == ';') continue;
    std::istringstream fields{std::string(trimmed)};
    double field[18];
    for (int i = 0; i < 18; ++i) {
      if (!(fields >> field[i]))
        throw std::invalid_argument("swf: line " + std::to_string(line_no) +
                                    " has fewer than 18 fields");
    }
    const double runtime_s = field[3];
    double procs = field[7] > 0 ? field[7] : field[4];
    if (runtime_s <= 0 || procs <= 0) continue;  // cancelled / corrupt entry

    sched::Job job;
    job.id = next_id++;
    job.submit_time = from_seconds(field[1]);
    job.actual_runtime = from_seconds(runtime_s);
    job.cores = static_cast<int>(procs);
    job.nodes = (job.cores + cores_per_node - 1) / cores_per_node;
    job.user_estimate = field[8] > 0 ? from_seconds(field[8]) : 0;
    job.user = "user" + std::to_string(static_cast<long long>(field[11]));
    job.name = "app" + std::to_string(static_cast<long long>(field[13]));
    const auto queue = static_cast<long long>(field[14]);
    job.partition = queue > 0 ? "q" + std::to_string(queue) : "batch";
    jobs.push_back(std::move(job));
  }
  return jobs;
}

void write_swf(std::ostream& os, const std::vector<sched::Job>& jobs,
               int cores_per_node) {
  os << "; SWF written by eslurm (generated workload)\n";
  os << "; MaxProcs inferred from the widest job\n";
  char buf[256];
  for (const auto& job : jobs) {
    // user/app labels of the form user<N>/app<N> round-trip; anything
    // else maps to -1 (SWF has numeric ids only).
    auto numeric_suffix = [](const std::string& s, const char* prefix) -> long long {
      if (!starts_with(s, prefix)) return -1;
      const std::string digits = s.substr(std::string(prefix).size());
      if (digits.empty()) return -1;
      for (const char c : digits)
        if (!std::isdigit(static_cast<unsigned char>(c))) return -1;
      return std::stoll(digits);
    };
    std::snprintf(buf, sizeof(buf),
                  "%llu %.0f -1 %.0f %d -1 -1 %d %.0f -1 1 %lld -1 %lld -1 -1 -1 -1\n",
                  static_cast<unsigned long long>(job.id),
                  to_seconds(job.submit_time), to_seconds(job.actual_runtime),
                  job.cores > 0 ? job.cores : job.nodes * cores_per_node,
                  job.cores > 0 ? job.cores : job.nodes * cores_per_node,
                  to_seconds(job.user_estimate),
                  numeric_suffix(job.user, "user"), numeric_suffix(job.name, "app"));
    os << buf;
  }
}

}  // namespace eslurm::trace
