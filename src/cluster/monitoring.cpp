#include "cluster/monitoring.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace eslurm::cluster {

const char* indicator_name(IndicatorKind kind) {
  switch (kind) {
    case IndicatorKind::Voltage: return "voltage";
    case IndicatorKind::Current: return "current";
    case IndicatorKind::Temperature: return "temperature";
    case IndicatorKind::Humidity: return "humidity";
    case IndicatorKind::LiquidCooling: return "liquid-cooling";
    case IndicatorKind::AirCooling: return "air-cooling";
    case IndicatorKind::NetworkCard: return "network-card";
    case IndicatorKind::Memory: return "memory";
  }
  return "?";
}

StaticFailurePredictor::StaticFailurePredictor(std::vector<NodeId> nodes)
    : set_(nodes.begin(), nodes.end()) {}

void StaticFailurePredictor::set_predicted(NodeId node, bool predicted) {
  const bool changed = predicted ? set_.insert(node).second : set_.erase(node) > 0;
  if (!changed) return;
  for (const auto& hook : hooks_) hook(node, predicted);
}

MonitoringSystem::MonitoringSystem(ClusterModel& cluster, FailureModel& failures,
                                   Rng rng, MonitoringParams params)
    : cluster_(cluster), rng_(rng), params_(params) {
  predicted_.resize(cluster.size());
  // Genuine alerts: the failure model tells us a node will fail at
  // `fail_at`; with probability hit_rate the BMU notices the degradation
  // and the alert climbs the BMU -> CMU -> SMU chain.
  failures.add_pre_failure_hook([this](NodeId node, SimTime fail_at) {
    if (!rng_.chance(params_.hit_rate)) return;
    const SimTime smu_at = cluster_.engine().now() + params_.bmu_to_cmu_delay +
                           params_.cmu_to_smu_delay;
    // The alert is held until well past the failure; once the node is
    // actually down it is excluded from node lists anyway, and it clears
    // on restore.
    const SimTime expires = fail_at + hours(24);
    cluster_.engine().schedule_at(smu_at, [this, node, expires] {
      raise_alert(node, /*genuine=*/true, expires);
    });
  });
  // Restores clear any outstanding alert for the node.
  cluster_.add_observer([this](NodeId node, NodeState, NodeState now_state) {
    if (now_state == NodeState::Up) clear_alert(node);
  });
}

void MonitoringSystem::start(SimTime horizon) { arm_false_alarm(horizon); }

void MonitoringSystem::arm_false_alarm(SimTime horizon) {
  const double rate_per_hour = params_.false_alarms_per_node_day *
                               static_cast<double>(cluster_.size()) / 24.0;
  if (rate_per_hour <= 0.0) return;
  const SimTime at =
      cluster_.engine().now() + from_seconds(rng_.exponential(1.0 / rate_per_hour) * 3600.0);
  if (at > horizon) return;
  cluster_.engine().schedule_at(at, [this, horizon] {
    const auto victim = static_cast<NodeId>(
        rng_.uniform_int(0, static_cast<std::int64_t>(cluster_.size()) - 1));
    if (cluster_.alive(victim)) {
      const SimTime expires =
          cluster_.engine().now() + from_seconds(params_.false_alarm_hold_hours * 3600.0);
      raise_alert(victim, /*genuine=*/false, expires);
    }
    arm_false_alarm(horizon);
  });
}

void MonitoringSystem::raise_alert(NodeId node, bool genuine, SimTime expires_at) {
  ++raised_;
  if (genuine)
    ++genuine_;
  else
    ++false_;
  if (predicted_.set(node)) fire_hooks(node, true);
  Entry& entry = active_[node];
  entry.alert.node = node;
  entry.alert.kind = static_cast<IndicatorKind>(rng_.uniform_int(0, 7));
  entry.alert.raised_at = cluster_.engine().now();
  entry.alert.expires_at = expires_at;
  entry.alert.genuine = genuine;
  entry.token = next_token_++;
  const std::uint64_t token = entry.token;
  if (expires_at != kTimeNever) {
    cluster_.engine().schedule_at(expires_at, [this, node, token] {
      expire_alert(node, token);
    });
  }
  ESLURM_DEBUG("monitoring: alert on node ", node, " (",
               indicator_name(entry.alert.kind), genuine ? ", genuine)" : ", false)");
}

void MonitoringSystem::expire_alert(NodeId node, std::uint64_t token) {
  const auto it = active_.find(node);
  if (it != active_.end() && it->second.token == token) {
    active_.erase(it);
    if (predicted_.reset(node)) fire_hooks(node, false);
  }
}

void MonitoringSystem::clear_alert(NodeId node) {
  if (active_.erase(node) > 0 && predicted_.reset(node))
    fire_hooks(node, false);
}

void MonitoringSystem::fire_hooks(NodeId node, bool now_predicted) {
  for (const auto& hook : hooks_) hook(node, now_predicted);
}

std::vector<Alert> MonitoringSystem::active_alerts() const {
  std::vector<Alert> out;
  out.reserve(active_.size());
  for (const auto& [node, entry] : active_) {
    (void)node;
    out.push_back(entry.alert);
  }
  std::sort(out.begin(), out.end(),
            [](const Alert& a, const Alert& b) { return a.node < b.node; });
  return out;
}

}  // namespace eslurm::cluster
