#include "cluster/node_soa.hpp"

namespace eslurm::cluster {

void NodeBitset::resize(std::size_t bits) {
  bits_ = bits;
  words_.assign((bits + 63) / 64, 0);
  count_ = 0;
}

void NodeBitset::clear_all() {
  std::fill(words_.begin(), words_.end(), 0);
  count_ = 0;
}

void NodeBitset::set_all() {
  std::fill(words_.begin(), words_.end(), ~0ull);
  if (bits_ & 63) words_.back() = (1ull << (bits_ & 63)) - 1;
  count_ = bits_;
}

void NodeBitset::assign_and_not(const NodeBitset& a, const NodeBitset& b) {
  words_.resize(a.words_.size());
  bits_ = a.bits_;
  std::size_t count = 0;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    words_[w] = a.words_[w] & ~b.words_[w];
    count += static_cast<std::size_t>(__builtin_popcountll(words_[w]));
  }
  count_ = count;
}

void NodeBitset::assign_and(const NodeBitset& a, const NodeBitset& b) {
  words_.resize(a.words_.size());
  bits_ = a.bits_;
  std::size_t count = 0;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    words_[w] = a.words_[w] & b.words_[w];
    count += static_cast<std::size_t>(__builtin_popcountll(words_[w]));
  }
  count_ = count;
}

NodeSoa::NodeSoa(std::size_t n)
    : state(n, NodeState::Up),
      state_since(n, 0),
      failure_count(n, 0),
      risk(n, 0.0),
      report_deadline(n, kTimeNever) {
  up.resize(n);
  up.set_all();
}

bool NodeSoa::apply_state(NodeId id, NodeState to, SimTime now) {
  const NodeState old = state[id];
  if (old == to) return false;
  state[id] = to;
  state_since[id] = now;
  if (to == NodeState::Up) up.set(id);
  else up.reset(id);
  if (to == NodeState::Down) {
    const auto failures = static_cast<double>(++failure_count[id]);
    risk[id] = failures / (failures + 8.0);
  }
  return true;
}

std::size_t NodeSoa::overdue_reports(SimTime now) const {
  std::size_t overdue = 0;
  for (std::size_t i = 0; i < report_deadline.size(); ++i)
    if (report_deadline[i] != kTimeNever && report_deadline[i] < now) ++overdue;
  return overdue;
}

}  // namespace eslurm::cluster
