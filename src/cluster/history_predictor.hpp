// History-based failure prediction plugins.
//
// Section IV-C: "As the failure node prediction mechanism is implemented
// as a plugin, more advanced techniques can be easily integrated."  Two
// such plugins beyond the alert-driven MonitoringSystem:
//
//   * HistoryFailurePredictor -- nodes that failed recently are likely to
//     fail again (infant-mortality / flapping hardware): a node is
//     predicted for `suspicion_window` after each failure, and forever
//     once its failure count passes `chronic_threshold`;
//   * CompositePredictor -- union of any number of plugins (the paper's
//     over-prediction principle: a false positive only costs a leaf slot).
#pragma once

#include <unordered_map>
#include <vector>

#include "cluster/monitoring.hpp"

namespace eslurm::cluster {

class HistoryFailurePredictor final : public FailurePredictor {
 public:
  /// Subscribes to the cluster's state changes.
  HistoryFailurePredictor(ClusterModel& cluster, SimTime suspicion_window = hours(24),
                          std::uint32_t chronic_threshold = 3);

  bool predicted_failed(NodeId node) const override;
  std::size_t predicted_count() const override;

  std::uint32_t failure_count(NodeId node) const;

 private:
  ClusterModel& cluster_;
  SimTime suspicion_window_;
  std::uint32_t chronic_threshold_;
  struct History {
    std::uint32_t failures = 0;
    SimTime last_failure = -1;
  };
  std::unordered_map<NodeId, History> history_;
};

class CompositePredictor final : public FailurePredictor {
 public:
  explicit CompositePredictor(std::vector<const FailurePredictor*> parts);

  bool predicted_failed(NodeId node) const override;
  std::size_t predicted_count() const override;  ///< sum (may overcount overlap)

 private:
  std::vector<const FailurePredictor*> parts_;
};

}  // namespace eslurm::cluster
