#include "cluster/failure_model.hpp"

#include <algorithm>
#include <cmath>

#include "telemetry/telemetry.hpp"
#include "util/log.hpp"

namespace eslurm::cluster {

FailureModel::FailureModel(ClusterModel& cluster, Rng rng, FailureModelParams params)
    : cluster_(cluster),
      rng_(rng),
      params_(params),
      immune_(cluster.size(), false),
      repair_at_(cluster.size(), 0) {}

void FailureModel::set_immune(std::vector<NodeId> nodes) {
  std::fill(immune_.begin(), immune_.end(), false);
  for (NodeId n : nodes) immune_.at(n) = true;
}

void FailureModel::add_pre_failure_hook(PreFailureHook hook) {
  hooks_.push_back(std::move(hook));
}

NodeId FailureModel::pick_victim() {
  // Rejection-sample an alive, non-immune node; bounded attempts keep the
  // call O(1) in the common case of few failures.
  for (int attempt = 0; attempt < 64; ++attempt) {
    const auto id = static_cast<NodeId>(
        rng_.uniform_int(0, static_cast<std::int64_t>(cluster_.size()) - 1));
    if (!immune_[id] && cluster_.alive(id)) return id;
  }
  return net::kNoNode;
}

void FailureModel::start(SimTime horizon) {
  horizon_ = horizon;
  arm_next_failure();
}

void FailureModel::arm_next_failure() {
  if (cluster_.alive_count() == 0) return;
  const double cluster_rate_per_hour =
      static_cast<double>(cluster_.alive_count()) / params_.node_mtbf_hours;
  const double gap_hours = rng_.exponential(1.0 / cluster_rate_per_hour);
  const SimTime at = cluster_.engine().now() + from_seconds(gap_hours * 3600.0);
  if (at > horizon_) return;
  cluster_.engine().schedule_at(at, [this] {
    const NodeId victim = pick_victim();
    if (victim != net::kNoNode) {
      const double lead_min =
          rng_.exponential(std::max(1e-3, params_.alert_lead_mean_minutes));
      const SimTime fail_at =
          cluster_.engine().now() + from_seconds(lead_min * 60.0);
      for (const auto& hook : hooks_) hook(victim, fail_at);
      const double repair_hours =
          params_.repair_mean_hours *
          std::exp(rng_.normal(0.0, params_.repair_sigma)) /
          std::exp(params_.repair_sigma * params_.repair_sigma / 2.0);
      cluster_.engine().schedule_at(fail_at, [this, victim, repair_hours] {
        execute_failure(victim, from_seconds(repair_hours * 3600.0));
      });
    }
    arm_next_failure();
  });
}

void FailureModel::execute_failure(NodeId node, SimTime repair_after) {
  const SimTime repair_at = cluster_.engine().now() + repair_after;
  if (!cluster_.alive(node)) {
    // Double failure: the node is already down.  Never count a second
    // injection or schedule a second repair -- but the outage must not
    // end before the *latest* failure's repair time, so the deadline
    // extends and the pending repair event re-arms itself (finish_repair).
    if (repair_at > repair_at_[node]) repair_at_[node] = repair_at;
    return;
  }
  repair_at_[node] = repair_at;
  ++injected_;
  ESLURM_DEBUG("failure: node ", node, " down at t=", to_seconds(cluster_.engine().now()),
               "s for ", to_seconds(repair_after), "s");
  cluster_.fail(node);
  if (auto* t = cluster_.engine().telemetry()) {
    t->metrics.counter("cluster.failures_injected").inc();
    // fail() has already run, so the alive count is the post-fail truth --
    // no hand-computed offset that drifts when fail() is a no-op.
    t->metrics.gauge("cluster.nodes_down")
        .set(static_cast<double>(cluster_.size() - cluster_.alive_count()));
    t->tracer.instant("node-failure", "cluster",
                      {{"node", static_cast<double>(node)},
                       {"repair_s", to_seconds(repair_after)}});
  }
  cluster_.engine().schedule_after(repair_after, [this, node] { finish_repair(node); });
}

void FailureModel::finish_repair(NodeId node) {
  if (cluster_.alive(node)) return;
  if (cluster_.engine().now() < repair_at_[node]) {
    // A later failure extended the outage while this repair was in
    // flight; come back at the extended deadline.
    cluster_.engine().schedule_at(repair_at_[node],
                                  [this, node] { finish_repair(node); });
    return;
  }
  cluster_.restore(node);
  if (auto* t = cluster_.engine().telemetry()) {
    t->metrics.counter("cluster.nodes_repaired").inc();
    t->metrics.gauge("cluster.nodes_down")
        .set(static_cast<double>(cluster_.size() - cluster_.alive_count()));
  }
}

void FailureModel::schedule_burst(const BurstEvent& burst) {
  cluster_.engine().schedule_at(burst.at, [this, burst] {
    std::size_t taken = 0;
    // Bursts hit a contiguous span of nodes (a rack / chassis group),
    // starting from a random origin.
    const auto n = static_cast<NodeId>(cluster_.size());
    const auto origin = static_cast<NodeId>(rng_.uniform_int(0, n - 1));
    const SimTime down_for = from_seconds(burst.duration_hours * 3600.0);
    for (NodeId offset = 0; offset < n && taken < burst.node_count; ++offset) {
      const NodeId id = (origin + offset) % n;
      if (immune_[id] || !cluster_.alive(id)) continue;
      // A short staggered lead so monitoring sees the wave coming.
      const SimTime fail_at = cluster_.engine().now() + milliseconds(10 * taken);
      for (const auto& hook : hooks_) hook(id, fail_at);
      cluster_.engine().schedule_at(fail_at, [this, id, down_for] {
        execute_failure(id, down_for);
      });
      ++taken;
    }
    ESLURM_INFO("burst failure: ", taken, " nodes at t=",
                to_seconds(cluster_.engine().now()), "s");
  });
}

void FailureModel::fail_now(NodeId node, SimTime down_for) {
  // Hooks announce an *upcoming* transition; a node that is already down
  // has none, and execute_failure only extends its outage.
  if (cluster_.alive(node))
    for (const auto& hook : hooks_) hook(node, cluster_.engine().now());
  execute_failure(node, down_for);
}

}  // namespace eslurm::cluster
