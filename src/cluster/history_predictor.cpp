#include "cluster/history_predictor.hpp"

namespace eslurm::cluster {

HistoryFailurePredictor::HistoryFailurePredictor(ClusterModel& cluster,
                                                 SimTime suspicion_window,
                                                 std::uint32_t chronic_threshold)
    : cluster_(cluster),
      suspicion_window_(suspicion_window),
      chronic_threshold_(chronic_threshold) {
  cluster_.add_observer([this](NodeId node, NodeState, NodeState now_state) {
    if (now_state == NodeState::Down) {
      History& entry = history_[node];
      ++entry.failures;
      entry.last_failure = cluster_.engine().now();
    }
  });
}

bool HistoryFailurePredictor::predicted_failed(NodeId node) const {
  const auto it = history_.find(node);
  if (it == history_.end()) return false;
  if (it->second.failures >= chronic_threshold_) return true;  // chronic
  return it->second.last_failure >= 0 &&
         cluster_.engine().now() - it->second.last_failure <= suspicion_window_;
}

std::size_t HistoryFailurePredictor::predicted_count() const {
  std::size_t count = 0;
  for (const auto& [node, entry] : history_)
    if (predicted_failed(node)) ++count;
  return count;
}

std::uint32_t HistoryFailurePredictor::failure_count(NodeId node) const {
  const auto it = history_.find(node);
  return it == history_.end() ? 0 : it->second.failures;
}

CompositePredictor::CompositePredictor(std::vector<const FailurePredictor*> parts)
    : parts_(std::move(parts)) {}

bool CompositePredictor::predicted_failed(NodeId node) const {
  for (const FailurePredictor* part : parts_)
    if (part->predicted_failed(node)) return true;
  return false;
}

std::size_t CompositePredictor::predicted_count() const {
  std::size_t count = 0;
  for (const FailurePredictor* part : parts_) count += part->predicted_count();
  return count;
}

}  // namespace eslurm::cluster
