// Struct-of-arrays node state for 100K-node worlds.
//
// The per-node-object model (a vector of NodeInfo with a string name and
// mixed-width fields, plus unordered_set side tables in the RM) costs a
// pointer chase and a hash probe per node per sweep.  At 16K+ nodes the
// heartbeat/monitoring sweeps dominate the simulation's wall clock, so
// the hot state lives here instead: one flat array per field, indexed by
// NodeId, with 64-bit bitsets answering the membership queries ("all
// alive", "drainable", "schedulable") a whole word at a time.
//
// Ownership: ClusterModel owns the authoritative fields (state,
// state_since, failure_count, the `up` bitset and the derived base
// risk) and mutates them only through apply_state; the RM maintains the
// scheduling metadata arrays (report deadlines) in place.
#pragma once

#include <cstdint>
#include <vector>

#include "net/message.hpp"
#include "util/time.hpp"

namespace eslurm::cluster {

using net::NodeId;

enum class NodeState : std::uint8_t {
  Up,          ///< healthy, can run jobs and relay messages
  Down,        ///< failed or powered off; unreachable
  Maintenance  ///< administratively drained (hardware replacement etc.)
};

/// Dense bitset over node ids backed by 64-bit words.  Set/reset report
/// whether the bit actually changed so membership counts stay O(1), and
/// word-level combinators (`assign_and_not`, `for_each_diff`) let health
/// sweeps process 64 nodes per instruction instead of one hash probe
/// per node.
class NodeBitset {
 public:
  NodeBitset() = default;
  explicit NodeBitset(std::size_t bits) { resize(bits); }

  void resize(std::size_t bits);
  std::size_t size() const { return bits_; }

  bool test(NodeId id) const {
    return (words_[id >> 6] >> (id & 63)) & 1u;
  }
  /// Sets bit `id`; returns true if it was previously clear.
  bool set(NodeId id) {
    std::uint64_t& word = words_[id >> 6];
    const std::uint64_t mask = 1ull << (id & 63);
    if (word & mask) return false;
    word |= mask;
    ++count_;
    return true;
  }
  /// Clears bit `id`; returns true if it was previously set.
  bool reset(NodeId id) {
    std::uint64_t& word = words_[id >> 6];
    const std::uint64_t mask = 1ull << (id & 63);
    if (!(word & mask)) return false;
    word &= ~mask;
    --count_;
    return true;
  }

  std::size_t count() const { return count_; }
  bool any() const { return count_ > 0; }
  bool none() const { return count_ == 0; }
  void clear_all();
  void set_all();

  /// *this = a & ~b (sizes must match); recounts in one word pass.
  void assign_and_not(const NodeBitset& a, const NodeBitset& b);
  /// *this = a & b.
  void assign_and(const NodeBitset& a, const NodeBitset& b);

  /// Calls `fn(NodeId)` for every set bit in ascending id order.
  template <typename Fn>
  void for_each_set(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t word = words_[w];
      while (word) {
        const int bit = __builtin_ctzll(word);
        fn(static_cast<NodeId>((w << 6) + static_cast<std::size_t>(bit)));
        word &= word - 1;
      }
    }
  }

  /// Calls `fn(NodeId, bool now_set)` for every bit that differs between
  /// *this and `other`, ascending -- the transition scan of a health
  /// refresh (`now_set` is the bit's value in `other`).
  template <typename Fn>
  void for_each_diff(const NodeBitset& other, Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t diff = words_[w] ^ other.words_[w];
      while (diff) {
        const int bit = __builtin_ctzll(diff);
        const NodeId id = static_cast<NodeId>((w << 6) + static_cast<std::size_t>(bit));
        fn(id, (other.words_[w] >> bit) & 1u);
        diff &= diff - 1;
      }
    }
  }

  const std::vector<std::uint64_t>& words() const { return words_; }

  bool operator==(const NodeBitset& other) const {
    return bits_ == other.bits_ && words_ == other.words_;
  }

 private:
  std::vector<std::uint64_t> words_;
  std::size_t bits_ = 0;
  std::size_t count_ = 0;
};

/// The flat node-state arrays.  Every field of the old NodeInfo that the
/// hot paths touch, one contiguous array each; names and the homogeneous
/// hardware description (cores, memory) stay with ClusterModel and are
/// materialized on demand.
struct NodeSoa {
  explicit NodeSoa(std::size_t n);

  std::size_t size() const { return state.size(); }

  // --- authoritative cluster state (mutate via apply_state only) -------
  std::vector<NodeState> state;
  std::vector<SimTime> state_since;
  std::vector<std::uint32_t> failure_count;  ///< lifetime failures observed
  NodeBitset up;                             ///< state[i] == Up
  /// Failure-history base risk in [0, 1): failures / (failures + 8),
  /// the chronic-flapper term of the failure-aware placement scorer,
  /// updated whenever failure_count changes.
  std::vector<double> risk;

  // --- RM-maintained scheduling metadata -------------------------------
  /// Per-node heartbeat deadline: the sim-time by which the next status
  /// report must arrive (kTimeNever = no report expected yet).  Written
  /// by the RM's report handler; scanned for overdue nodes.
  std::vector<SimTime> report_deadline;

  /// Applies a state transition; returns false if it was a no-op.
  /// Maintains `up`, `state_since`, `failure_count` and `risk`.
  bool apply_state(NodeId id, NodeState to, SimTime now);

  /// Nodes whose report deadline has passed (deadline set and < now).
  std::size_t overdue_reports(SimTime now) const;
};

}  // namespace eslurm::cluster
