// Failure injection.
//
// Reproduces the failure behaviour the paper measured in production:
// sporadic single-node failures (power, network, memory), plus rare
// large-scale bursts (the paper observed one 600+-node event caused by a
// hardware replacement).  Failures are *scheduled ahead of time* inside
// the model; the monitoring substrate (monitoring.hpp) taps that schedule
// to emit leading hardware alerts -- physical sensors degrade before the
// node actually drops off the fabric.
#pragma once

#include <functional>
#include <vector>

#include "cluster/cluster.hpp"
#include "util/rng.hpp"

namespace eslurm::cluster {

struct FailureModelParams {
  /// Per-node mean time between failures.  The cluster-wide failure
  /// arrival rate is n_alive / mtbf.
  double node_mtbf_hours = 8760.0;  // one failure per node-year
  /// Repair time: lognormal-ish around the mean (most repairs are a
  /// reboot; some need hardware swap).
  double repair_mean_hours = 2.0;
  double repair_sigma = 0.8;
  /// Lead time between the hardware first misbehaving (alert-able) and
  /// the node actually failing.
  double alert_lead_mean_minutes = 20.0;
};

struct BurstEvent {
  SimTime at = 0;
  std::size_t node_count = 0;     ///< nodes taken down together
  double duration_hours = 4.0;    ///< until restored
};

class FailureModel {
 public:
  FailureModel(ClusterModel& cluster, Rng rng, FailureModelParams params = {});

  /// Nodes that must never fail (e.g. the master in experiments where the
  /// paper kept the master dedicated and monitored).
  void set_immune(std::vector<NodeId> nodes);

  /// Registers a pre-failure hook: called when a failure is *scheduled*,
  /// with the victim and the time it will go down.  The monitoring
  /// substrate uses this to model leading sensor alerts.
  using PreFailureHook = std::function<void(NodeId, SimTime fail_at)>;
  void add_pre_failure_hook(PreFailureHook hook);

  /// Starts random single-node failure injection until `horizon`.
  void start(SimTime horizon);

  /// Schedules a correlated burst (maintenance wave / chassis loss).
  void schedule_burst(const BurstEvent& burst);

  /// Fails a specific node now, restoring it after `down_for`.
  /// Pre-failure hooks fire with lead time 0 (unpredicted failure); a
  /// node that is already down fires no hooks, and merely extends the
  /// outage if `down_for` outlasts the scheduled repair.
  void fail_now(NodeId node, SimTime down_for);

  std::uint64_t injected_failures() const { return injected_; }

  const FailureModelParams& params() const { return params_; }

 private:
  void arm_next_failure();
  void execute_failure(NodeId node, SimTime repair_after);
  void finish_repair(NodeId node);
  NodeId pick_victim();

  ClusterModel& cluster_;
  Rng rng_;
  FailureModelParams params_;
  SimTime horizon_ = 0;
  std::vector<bool> immune_;
  std::vector<PreFailureHook> hooks_;
  std::uint64_t injected_ = 0;
  /// Per-node repair deadline.  Failing a node that is already down must
  /// not let the earlier (shorter) repair resurrect it before the new
  /// outage elapses: the deadline only ever extends while down, and the
  /// repair event re-arms itself when it fires before the deadline.
  std::vector<SimTime> repair_at_;
};

}  // namespace eslurm::cluster
