// Cluster node model: node inventory, liveness, and failure bookkeeping.
//
// Nodes are homogeneous (as in the paper's evaluation: Tianhe-2A nodes
// are identical 12-core Xeons).  Roles -- master, satellite, compute --
// are a property of the RM deployment, not of the cluster itself.
//
// Hot state (up/down/drain status, state timestamps, failure counts)
// lives in flat struct-of-arrays storage (node_soa.hpp) so 100K-node
// sweeps touch contiguous arrays and bitset words, not per-node objects;
// names are materialized on demand (they appear in logs, never in hot
// loops).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cluster/node_soa.hpp"
#include "net/message.hpp"
#include "sim/engine.hpp"
#include "util/time.hpp"

namespace eslurm::cluster {

using net::NodeId;

/// On-demand per-node view; assembled from the SoA arrays and the
/// homogeneous hardware description.  Returned by value -- do not hold
/// references into it.
struct NodeInfo {
  NodeId id = net::kNoNode;
  std::string name;
  int cores = 12;
  std::int64_t memory_mb = 64 * 1024;
  NodeState state = NodeState::Up;
  SimTime state_since = 0;
  std::uint32_t failure_count = 0;  ///< lifetime failures observed
};

class ClusterModel {
 public:
  /// Builds `n` nodes named `<prefix><index>` (cn0, cn1, ...).
  ClusterModel(sim::Engine& engine, std::size_t n, std::string name_prefix = "cn",
               int cores_per_node = 12, std::int64_t memory_mb = 64 * 1024);

  std::size_t size() const { return soa_.size(); }
  /// Materialized per-node view (cold paths: logs, tests, dashboards).
  NodeInfo node(NodeId id) const;
  std::string node_name(NodeId id) const { return name_prefix_ + std::to_string(id); }

  // --- hot-path field accessors (O(1) array reads) ---------------------
  bool alive(NodeId id) const { return soa_.up.test(id); }
  NodeState state(NodeId id) const { return soa_.state[id]; }
  SimTime state_since(NodeId id) const { return soa_.state_since[id]; }
  std::uint32_t failure_count(NodeId id) const { return soa_.failure_count[id]; }
  /// Failure-history base risk (failures / (failures + 8)).
  double base_risk(NodeId id) const { return soa_.risk[id]; }

  std::size_t alive_count() const { return soa_.up.count(); }
  std::size_t failed_count() const { return soa_.size() - soa_.up.count(); }

  /// The "all alive" bitset, for word-at-a-time health scans.
  const NodeBitset& alive_bits() const { return soa_.up; }
  /// Full SoA access.  The const view is for scans; the mutable view is
  /// for the RM-maintained metadata arrays (report deadlines) -- state
  /// transitions must still go through set_state.
  const NodeSoa& soa() const { return soa_; }
  NodeSoa& soa() { return soa_; }

  /// Monotonic counter bumped on every real state transition; lets
  /// derived caches (FP-Tree ground-truth stats) detect staleness in
  /// O(1) instead of rescanning the cluster.
  std::uint64_t state_epoch() const { return state_epoch_; }

  /// All node ids currently in the given state.
  std::vector<NodeId> ids_in_state(NodeState state) const;

  /// State transitions.  Idempotent; observers fire only on real changes.
  void set_state(NodeId id, NodeState state);
  void fail(NodeId id) { set_state(id, NodeState::Down); }
  void restore(NodeId id) { set_state(id, NodeState::Up); }

  /// Observers, e.g. the monitoring substrate and RM node tracking.
  using StateObserver = std::function<void(NodeId, NodeState old_state, NodeState new_state)>;
  void add_observer(StateObserver observer);

  /// Liveness oracle in the shape Network expects.
  std::function<bool(NodeId)> liveness() const;

  sim::Engine& engine() { return engine_; }

 private:
  sim::Engine& engine_;
  NodeSoa soa_;
  std::string name_prefix_;
  int cores_per_node_;
  std::int64_t memory_mb_;
  std::uint64_t state_epoch_ = 0;
  std::vector<StateObserver> observers_;
};

}  // namespace eslurm::cluster
