// Cluster node model: node inventory, liveness, and failure bookkeeping.
//
// Nodes are homogeneous (as in the paper's evaluation: Tianhe-2A nodes
// are identical 12-core Xeons).  Roles -- master, satellite, compute --
// are a property of the RM deployment, not of the cluster itself.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "net/message.hpp"
#include "sim/engine.hpp"
#include "util/time.hpp"

namespace eslurm::cluster {

using net::NodeId;

enum class NodeState : std::uint8_t {
  Up,          ///< healthy, can run jobs and relay messages
  Down,        ///< failed or powered off; unreachable
  Maintenance  ///< administratively drained (hardware replacement etc.)
};

struct NodeInfo {
  NodeId id = net::kNoNode;
  std::string name;
  int cores = 12;
  std::int64_t memory_mb = 64 * 1024;
  NodeState state = NodeState::Up;
  SimTime state_since = 0;
  std::uint32_t failure_count = 0;  ///< lifetime failures observed
};

class ClusterModel {
 public:
  /// Builds `n` nodes named `<prefix><index>` (cn0, cn1, ...).
  ClusterModel(sim::Engine& engine, std::size_t n, std::string name_prefix = "cn",
               int cores_per_node = 12, std::int64_t memory_mb = 64 * 1024);

  std::size_t size() const { return nodes_.size(); }
  const NodeInfo& node(NodeId id) const { return nodes_.at(id); }
  const std::vector<NodeInfo>& nodes() const { return nodes_; }

  bool alive(NodeId id) const { return nodes_[id].state == NodeState::Up; }
  std::size_t alive_count() const { return alive_count_; }
  std::size_t failed_count() const { return nodes_.size() - alive_count_; }

  /// All node ids currently in the given state.
  std::vector<NodeId> ids_in_state(NodeState state) const;

  /// State transitions.  Idempotent; observers fire only on real changes.
  void set_state(NodeId id, NodeState state);
  void fail(NodeId id) { set_state(id, NodeState::Down); }
  void restore(NodeId id) { set_state(id, NodeState::Up); }

  /// Observers, e.g. the monitoring substrate and RM node tracking.
  using StateObserver = std::function<void(NodeId, NodeState old_state, NodeState new_state)>;
  void add_observer(StateObserver observer);

  /// Liveness oracle in the shape Network expects.
  std::function<bool(NodeId)> liveness() const;

  sim::Engine& engine() { return engine_; }

 private:
  sim::Engine& engine_;
  std::vector<NodeInfo> nodes_;
  std::size_t alive_count_ = 0;
  std::vector<StateObserver> observers_;
};

}  // namespace eslurm::cluster
