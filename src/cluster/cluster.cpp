#include "cluster/cluster.hpp"

#include <utility>

namespace eslurm::cluster {

ClusterModel::ClusterModel(sim::Engine& engine, std::size_t n, std::string name_prefix,
                           int cores_per_node, std::int64_t memory_mb)
    : engine_(engine),
      soa_(n),
      name_prefix_(std::move(name_prefix)),
      cores_per_node_(cores_per_node),
      memory_mb_(memory_mb) {}

NodeInfo ClusterModel::node(NodeId id) const {
  NodeInfo info;
  info.id = id;
  info.name = node_name(id);
  info.cores = cores_per_node_;
  info.memory_mb = memory_mb_;
  info.state = soa_.state[id];
  info.state_since = soa_.state_since[id];
  info.failure_count = soa_.failure_count[id];
  return info;
}

std::vector<NodeId> ClusterModel::ids_in_state(NodeState state) const {
  std::vector<NodeId> out;
  if (state == NodeState::Up) {
    out.reserve(soa_.up.count());
    soa_.up.for_each_set([&](NodeId id) { out.push_back(id); });
    return out;
  }
  for (std::size_t i = 0; i < soa_.size(); ++i)
    if (soa_.state[i] == state) out.push_back(static_cast<NodeId>(i));
  return out;
}

void ClusterModel::set_state(NodeId id, NodeState state) {
  const NodeState old = soa_.state.at(id);
  if (!soa_.apply_state(id, state, engine_.now())) return;
  ++state_epoch_;
  for (const auto& obs : observers_) obs(id, old, state);
}

void ClusterModel::add_observer(StateObserver observer) {
  observers_.push_back(std::move(observer));
}

std::function<bool(NodeId)> ClusterModel::liveness() const {
  return [this](NodeId id) { return alive(id); };
}

}  // namespace eslurm::cluster
