#include "cluster/cluster.hpp"

#include <utility>

namespace eslurm::cluster {

ClusterModel::ClusterModel(sim::Engine& engine, std::size_t n, std::string name_prefix,
                           int cores_per_node, std::int64_t memory_mb)
    : engine_(engine) {
  nodes_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    NodeInfo info;
    info.id = static_cast<NodeId>(i);
    info.name = name_prefix + std::to_string(i);
    info.cores = cores_per_node;
    info.memory_mb = memory_mb;
    nodes_.push_back(std::move(info));
  }
  alive_count_ = n;
}

std::vector<NodeId> ClusterModel::ids_in_state(NodeState state) const {
  std::vector<NodeId> out;
  for (const auto& node : nodes_)
    if (node.state == state) out.push_back(node.id);
  return out;
}

void ClusterModel::set_state(NodeId id, NodeState state) {
  NodeInfo& info = nodes_.at(id);
  const NodeState old = info.state;
  if (old == state) return;
  info.state = state;
  info.state_since = engine_.now();
  if (old == NodeState::Up) --alive_count_;
  if (state == NodeState::Up) ++alive_count_;
  if (state == NodeState::Down) ++info.failure_count;
  for (const auto& obs : observers_) obs(id, old, state);
}

void ClusterModel::add_observer(StateObserver observer) {
  observers_.push_back(std::move(observer));
}

std::function<bool(NodeId)> ClusterModel::liveness() const {
  return [this](NodeId id) { return alive(id); };
}

}  // namespace eslurm::cluster
