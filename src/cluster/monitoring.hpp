// Monitoring & diagnostic substrate and failure prediction.
//
// Models the Tianhe three-layer monitoring hierarchy the paper relies on
// (Section IV-C): per-board BMUs report to chassis CMUs, which report to
// the system SMU over a dedicated diagnostic network.  Over 200 hardware
// indicators (voltage, current, temperature, cooling, NIC health ...) are
// abstracted into alert events: when a node's hardware starts degrading,
// an alert propagates BMU -> CMU -> SMU with small hop delays and, from
// then on, the node is *predicted failed*.
//
// The paper adopts over-prediction on purpose: a predicted node is merely
// moved to a leaf of the communication tree, so false alarms are cheap.
// We model an imperfect sensor: a true pre-failure alert fires with
// probability `hit_rate`; independent false alarms arrive as a Poisson
// process and expire after a holding time.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/failure_model.hpp"
#include "util/rng.hpp"

namespace eslurm::cluster {

/// Indicator families carried by alerts, mirroring the categories the
/// paper lists for the Tianhe monitoring subsystem.
enum class IndicatorKind : std::uint8_t {
  Voltage,
  Current,
  Temperature,
  Humidity,
  LiquidCooling,
  AirCooling,
  NetworkCard,
  Memory,
};

const char* indicator_name(IndicatorKind kind);

struct Alert {
  NodeId node = net::kNoNode;
  IndicatorKind kind = IndicatorKind::Voltage;
  SimTime raised_at = 0;
  SimTime expires_at = kTimeNever;
  bool genuine = false;  ///< whether a real failure is scheduled behind it
};

struct MonitoringParams {
  double hit_rate = 0.85;            ///< P(alert precedes a real failure)
  double false_alarms_per_node_day = 0.002;
  double false_alarm_hold_hours = 6.0;
  SimTime bmu_to_cmu_delay = milliseconds(5);
  SimTime cmu_to_smu_delay = milliseconds(5);
  std::size_t nodes_per_chassis = 32;  ///< BMUs aggregated per CMU
};

/// Abstract failure predictor consumed by the FP-Tree constructor.  The
/// paper implements prediction as a plugin; this interface is that plugin
/// boundary.
///
/// Incremental consumers (the FP-Tree maintenance cache) subscribe to
/// prediction flips through change hooks.  A predictor that fires exactly
/// one hook per actual change advertises supports_change_hooks(); anyone
/// else keeps the default and consumers fall back to full rebuilds.
class FailurePredictor {
 public:
  /// `now_predicted` is the node's state *after* the change.
  using ChangeHook = std::function<void(NodeId, bool now_predicted)>;

  virtual ~FailurePredictor() = default;
  /// True if `node` is currently predicted to fail.
  virtual bool predicted_failed(NodeId node) const = 0;
  /// Number of currently predicted nodes (diagnostics only).
  virtual std::size_t predicted_count() const = 0;
  /// Whether every prediction change fires the registered hooks.
  virtual bool supports_change_hooks() const { return false; }
  /// Const because consumers hold const references; registration does not
  /// alter the predictor's observable prediction state.
  virtual void add_change_hook(ChangeHook hook) const { (void)hook; }
};

/// Predictor that never predicts: turns an FP-Tree into a plain tree.
/// Trivially hook-complete (there is never a change to report).
class NullFailurePredictor final : public FailurePredictor {
 public:
  bool predicted_failed(NodeId) const override { return false; }
  std::size_t predicted_count() const override { return 0; }
  bool supports_change_hooks() const override { return true; }
};

/// Oracle predictor for tests/benches: exactly a fixed set, mutable via
/// set_predicted so incremental-maintenance paths can be exercised.
class StaticFailurePredictor final : public FailurePredictor {
 public:
  explicit StaticFailurePredictor(std::vector<NodeId> nodes);
  bool predicted_failed(NodeId node) const override { return set_.count(node) > 0; }
  std::size_t predicted_count() const override { return set_.size(); }
  bool supports_change_hooks() const override { return true; }
  void add_change_hook(ChangeHook hook) const override {
    hooks_.push_back(std::move(hook));
  }

  /// Flips one node's prediction; fires hooks only on a real change.
  void set_predicted(NodeId node, bool predicted);

 private:
  std::unordered_set<NodeId> set_;
  mutable std::vector<ChangeHook> hooks_;
};

class MonitoringSystem final : public FailurePredictor {
 public:
  MonitoringSystem(ClusterModel& cluster, FailureModel& failures, Rng rng,
                   MonitoringParams params = {});

  /// Starts false-alarm generation until `horizon` (genuine alerts are
  /// driven by the failure model's pre-failure hook regardless).
  void start(SimTime horizon);

  // FailurePredictor interface: the SMU's live alert set.  Queries hit
  // a flat bitset (one bit per node), not the alert map -- the FP-Tree
  // rearranger probes this once per listed node per broadcast.
  bool predicted_failed(NodeId node) const override {
    return predicted_.test(node);
  }
  std::size_t predicted_count() const override { return active_.size(); }
  bool supports_change_hooks() const override { return true; }
  void add_change_hook(ChangeHook hook) const override {
    hooks_.push_back(std::move(hook));
  }
  /// The live predicted-failed bitset (for word-level scans).
  const NodeBitset& predicted_bits() const { return predicted_; }

  /// Full current alert set (e.g. for an administrator dashboard).
  std::vector<Alert> active_alerts() const;

  std::uint64_t alerts_raised() const { return raised_; }
  std::uint64_t genuine_alerts() const { return genuine_; }
  std::uint64_t false_alarms() const { return false_; }

 private:
  void raise_alert(NodeId node, bool genuine, SimTime expires_at);
  void expire_alert(NodeId node, std::uint64_t token);
  void arm_false_alarm(SimTime horizon);
  void clear_alert(NodeId node);
  void fire_hooks(NodeId node, bool now_predicted);

  ClusterModel& cluster_;
  Rng rng_;
  MonitoringParams params_;
  // node -> (alert, generation token); the token invalidates stale expiry
  // events when an alert is refreshed.
  struct Entry {
    Alert alert;
    std::uint64_t token = 0;
  };
  std::unordered_map<NodeId, Entry> active_;
  NodeBitset predicted_;  ///< bit per node: an alert is live
  mutable std::vector<ChangeHook> hooks_;
  std::uint64_t next_token_ = 1;
  std::uint64_t raised_ = 0, genuine_ = 0, false_ = 0;
};

}  // namespace eslurm::cluster
