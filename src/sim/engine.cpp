#include "sim/engine.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace eslurm::sim {

EventId Engine::schedule_at(SimTime t, std::function<void()> fn) {
  if (t < now_) throw std::invalid_argument("Engine::schedule_at: time in the past");
  const EventId id = next_id_++;
  queue_.push(QueueEntry{t, id});
  handlers_.emplace(id, std::move(fn));
  return id;
}

EventId Engine::schedule_after(SimTime delay, std::function<void()> fn) {
  if (delay < 0) throw std::invalid_argument("Engine::schedule_after: negative delay");
  return schedule_at(now_ + delay, std::move(fn));
}

bool Engine::cancel(EventId id) { return handlers_.erase(id) > 0; }

bool Engine::step() {
  while (!queue_.empty()) {
    const QueueEntry top = queue_.top();
    queue_.pop();
    const auto it = handlers_.find(top.id);
    if (it == handlers_.end()) continue;  // cancelled
    // Move the handler out before invoking: the callback may schedule or
    // cancel events, invalidating iterators.
    std::function<void()> fn = std::move(it->second);
    handlers_.erase(it);
    now_ = top.time;
    ++executed_;
    fn();
    return true;
  }
  return false;
}

void Engine::run_until(SimTime horizon) {
  while (!queue_.empty()) {
    // Skip cancelled entries without advancing time.
    const auto it = handlers_.find(queue_.top().id);
    if (it == handlers_.end()) {
      queue_.pop();
      continue;
    }
    if (queue_.top().time > horizon) break;
    step();
  }
  if (now_ < horizon) now_ = horizon;
}

void Engine::run() {
  while (step()) {
  }
}

PeriodicTask::PeriodicTask(Engine& engine, SimTime period, std::function<void()> fn)
    : engine_(engine), period_(period), fn_(std::move(fn)) {
  assert(period_ > 0);
}

PeriodicTask::~PeriodicTask() { stop(); }

void PeriodicTask::start(SimTime first_delay) {
  if (running_) return;
  running_ = true;
  arm(first_delay);
}

void PeriodicTask::stop() {
  if (!running_) return;
  running_ = false;
  if (pending_ != kInvalidEvent) {
    engine_.cancel(pending_);
    pending_ = kInvalidEvent;
  }
}

void PeriodicTask::arm(SimTime delay) {
  pending_ = engine_.schedule_after(delay, [this] {
    pending_ = kInvalidEvent;
    if (!running_) return;
    fn_();
    if (running_) arm(period_);
  });
}

}  // namespace eslurm::sim
