#include "sim/engine.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

#include "telemetry/telemetry.hpp"

namespace eslurm::sim {
namespace {

/// Queues below this size are never compacted: the win is negligible and
/// short benches would churn on tiny rebuilds.
constexpr std::size_t kCompactionMinQueue = 64;

}  // namespace

Engine::Engine(telemetry::Telemetry* telemetry)
    : telemetry_(telemetry && telemetry->enabled() ? telemetry : nullptr) {
  if (auto* t = telemetry_) {
    executed_counter_ = &t->metrics.counter("sim.events_executed");
    depth_gauge_ = &t->metrics.gauge("sim.queue_depth");
    stale_gauge_ = &t->metrics.gauge("sim.stale_ratio");
    compaction_counter_ = &t->metrics.counter("sim.queue_compactions");
    // The newest engine drives the trace clock (a context serves one
    // world at a time; the destructor retracts exactly this
    // registration).
    t->tracer.set_clock([this] { return now_; }, this);
  }
}

Engine::~Engine() {
  if (depth_gauge_) publish_telemetry();  // final sync for the artifact
  if (telemetry_) telemetry_->tracer.clear_clock(this);
}

bool Engine::cancel(EventId id) {
  const auto index = static_cast<std::uint32_t>(id & ((1u << kSlotBits) - 1));
  const std::uint64_t seq = id >> kSlotBits;
  if (seq == 0 || index >= pool_.capacity()) return false;
  EventSlot& slot = pool_[index];
  if (!slot.live || slot.seq != seq) return false;
  slot.fn.reset();  // destroy the capture now, not at slot reuse
  slot.live = false;
  pool_.release(index);
  maybe_compact();
  return true;
}

void Engine::maybe_compact() {
  // Lazy-cancel hygiene: cancelled entries stay in the queue until their
  // timestamp would have fired.  Workloads that arm-and-cancel watchdogs
  // far in the future (tree broadcasts, subtask monitors) accumulate
  // them; once more than half the queue is dead weight, rebuild it.
  if (queue_.size() < kCompactionMinQueue) return;
  if (stale_entries() * 2 <= queue_.size()) return;
  auto& entries = queue_.container();
  std::erase_if(entries, [this](const QueueEntry& e) { return !entry_live(e); });
  queue_.rebuild();
  ++compactions_;
  if (compaction_counter_) {
    compaction_counter_->inc();
    publish_telemetry();
  }
}

void Engine::publish_telemetry() {
  depth_gauge_->set(static_cast<double>(queue_.size()));
  stale_gauge_->set(stale_ratio());
  executed_counter_->inc(static_cast<double>(executed_) - executed_counter_->value());
}

bool Engine::step() {
  while (!queue_.empty()) {
    const QueueEntry top = queue_.top();
    queue_.pop();
    if (!entry_live(top)) continue;  // cancelled
    // The callable is invoked in place: pool storage is stable (deque),
    // so a callback that schedules events may grow the pool under us.
    // The slot is marked dead before the call (cancelling the executing
    // event is a no-op) but released only after it, so a reentrant
    // schedule can never overwrite the capture mid-execution.
    const std::uint64_t key = entry_key(top);
    const auto index = static_cast<std::uint32_t>(key & ((1u << kSlotBits) - 1));
    EventSlot& slot = pool_[index];
    slot.live = false;
    now_ = entry_time(top);
    ++executed_;
    if (observer_) observer_(observer_ctx_, now_, key >> kSlotBits);
    // Periodic gauge refresh; the modulo keeps the disabled/enabled cost
    // out of the per-event budget.
    if (depth_gauge_ && (executed_ & 0xFFF) == 0) publish_telemetry();
    slot.fn();
    slot.fn.reset();  // destroy the capture now, not at slot reuse
    pool_.release(index);
    return true;
  }
  return false;
}

void Engine::run_until(SimTime horizon) {
  while (!queue_.empty()) {
    // Skip cancelled entries without advancing time.
    if (!entry_live(queue_.top())) {
      queue_.pop();
      continue;
    }
    if (entry_time(queue_.top()) > horizon) break;
    step();
  }
  if (now_ < horizon) now_ = horizon;
  if (depth_gauge_) publish_telemetry();
}

void Engine::run() {
  while (step()) {
  }
  if (depth_gauge_) publish_telemetry();
}

PeriodicTask::PeriodicTask(Engine& engine, SimTime period, std::function<void()> fn)
    : engine_(engine), period_(period), fn_(std::move(fn)) {
  assert(period_ > 0);
}

PeriodicTask::~PeriodicTask() { stop(); }

void PeriodicTask::start(SimTime first_delay) {
  if (running_) return;
  running_ = true;
  arm(first_delay);
}

void PeriodicTask::stop() {
  if (!running_) return;
  running_ = false;
  if (pending_ != kInvalidEvent) {
    engine_.cancel(pending_);
    pending_ = kInvalidEvent;
  }
}

void PeriodicTask::arm(SimTime delay) {
  pending_ = engine_.schedule_after(delay, [this] {
    pending_ = kInvalidEvent;
    if (!running_) return;
    fn_();
    if (running_) arm(period_);
  });
}

}  // namespace eslurm::sim
