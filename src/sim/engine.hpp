// Deterministic discrete-event simulation engine.
//
// The engine is the substrate every other ESLURM subsystem runs on: the
// simulated network, node failure injection, RM daemons and schedulers all
// schedule callbacks here.  Events with equal timestamps execute in
// scheduling order (FIFO tie-break), which makes whole-cluster runs
// bit-reproducible.
//
// Hot-path design (PR 5, "zero-allocation event core"): events live in a
// slab pool of fixed-size slots, each holding the callable inline in an
// InplaceFunction (heap fallback only for oversized captures, counted by
// heap_fallback_events()).  An EventId is the slot index plus a per-slot
// generation, so cancel() is an O(1) generation check -- no hash map, no
// per-event allocation -- and a recycled slot can never be cancelled
// through a stale handle (ABA safety).  Execution order is decided only
// by the (time, seq) pair where `seq` is the monotonically increasing
// scheduling sequence number; pooling therefore cannot perturb event
// order, which the golden-sequence test pins bit-for-bit.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <vector>

#include "util/inplace_function.hpp"
#include "util/pool.hpp"
#include "util/time.hpp"

namespace eslurm::telemetry {
class Counter;
class Gauge;
struct Telemetry;
}  // namespace eslurm::telemetry

namespace eslurm::sim {

/// Handle for a scheduled event; can be used to cancel it.  Packs the
/// pool slot (low 24 bits) and the event's scheduling sequence number
/// (high 40 bits).  The sequence number is globally unique per schedule,
/// so it doubles as the slot's generation: a recycled slot never matches
/// a stale handle (ABA safety).  Sequence numbers start at 1, so a valid
/// id is never 0; the packing caps a single engine at 2^24 concurrently
/// pending events and 2^40 total schedules (~10^12, years of sim work).
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

/// Inline capture budget for one event.  Sized so the common captures --
/// a subsystem pointer plus a few ids, a pooled-send handle, a small
/// struct -- stay inline; larger captures fall back to one heap
/// allocation and are counted (Engine::heap_fallback_events).
inline constexpr std::size_t kEventInlineBytes = 104;

/// The engine's event callable: one-shot, move-only, small-buffer.
/// Lambdas convert implicitly, exactly as with std::function.
using EventFn = util::InplaceFunction<void(), kEventInlineBytes>;

class Engine {
 public:
  /// An engine optionally carries the experiment's telemetry context;
  /// subsystems built on top reach it through `telemetry()`, so one
  /// injection point covers the whole world.  A disabled context is
  /// treated as absent (instrument caching happens at construction).
  explicit Engine(telemetry::Telemetry* telemetry = nullptr);
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  SimTime now() const { return now_; }

  /// The telemetry context this world publishes to; nullptr when
  /// telemetry is off.  The fast path for instrumented code is
  /// `if (auto* t = engine.telemetry()) ...` -- one pointer check.
  telemetry::Telemetry* telemetry() const { return telemetry_; }

  /// Schedules `fn` at absolute simulated time `t` (>= now).  A template
  /// so the capture is constructed directly in its pool slot -- the
  /// zero-allocation fill path has no intermediate wrapper and no
  /// relocation.
  template <typename F>
  EventId schedule_at(SimTime t, F&& fn) {
    if (t < now_)
      throw std::invalid_argument("Engine::schedule_at: time in the past");
    if constexpr (std::is_same_v<std::decay_t<F>, EventFn>) {
      if (!fn.is_inline()) ++heap_fallbacks_;
    } else if constexpr (!EventFn::stores_inline_v<F>) {
      ++heap_fallbacks_;
    }
    const std::uint32_t index = pool_.acquire();
    EventSlot& slot = pool_[index];
    const std::uint64_t seq = next_seq_++ & kSeqMask;
    slot.seq = seq;  // recycled handles to this slot die here (ABA safety)
    slot.live = true;
    slot.fn = std::forward<F>(fn);
    const EventId id = (seq << kSlotBits) | index;
    queue_.push(make_entry(t, id));
    return id;
  }

  /// Schedules `fn` after `delay` (>= 0) from now.
  template <typename F>
  EventId schedule_after(SimTime delay, F&& fn) {
    if (delay < 0)
      throw std::invalid_argument("Engine::schedule_after: negative delay");
    return schedule_at(now_ + delay, std::forward<F>(fn));
  }

  /// Cancels a pending event.  Returns false if it already ran, was
  /// already cancelled, or the id is unknown.
  bool cancel(EventId id);

  bool has_pending() const { return pool_.in_use() > 0; }
  std::size_t pending_count() const { return pool_.in_use(); }

  /// Executes the next event.  Returns false if the queue is empty.
  bool step();

  /// Runs events until the queue drains or the horizon passes.  The clock
  /// is left at min(horizon, last event time).  Events scheduled exactly
  /// at the horizon still execute.
  void run_until(SimTime horizon);

  /// Runs until no events remain.
  void run();

  /// Total number of executed events (for sanity checks / reports).
  std::uint64_t executed_events() const { return executed_; }

  /// Test/verification hook: invoked for every executed event with the
  /// event's execution time and its monotonic scheduling sequence number
  /// (the FIFO tie-break key).  The golden-sequence determinism test
  /// hashes this stream; a null observer costs one branch per event.
  using ExecObserver = void (*)(void* ctx, SimTime time, std::uint64_t seq);
  void set_exec_observer(ExecObserver observer, void* ctx) {
    observer_ = observer;
    observer_ctx_ = ctx;
  }

  // --- queue hygiene ---------------------------------------------------
  /// Total priority-queue entries, live plus cancelled-but-unpopped.
  std::size_t queue_size() const { return queue_.size(); }
  /// Cancelled entries still occupying queue slots.  `cancel()` only
  /// frees the event slot; the entry stays queued until its timestamp is
  /// reached or a compaction sweeps it.
  std::size_t stale_entries() const { return queue_.size() - pool_.in_use(); }
  /// Stale fraction of the queue (0 when empty).
  double stale_ratio() const {
    return queue_.empty() ? 0.0
                          : static_cast<double>(stale_entries()) /
                                static_cast<double>(queue_.size());
  }
  /// Times the queue was compacted because stale entries exceeded half
  /// of it.  Watchdog-heavy workloads (broadcast trees arm one watchdog
  /// per child and cancel nearly all of them) previously grew the queue
  /// until the cancelled timestamps were reached.
  std::uint64_t compactions() const { return compactions_; }

  // --- pool introspection ----------------------------------------------
  /// Event slots ever created (the pool's high-water mark); steady-state
  /// workloads stop growing this once warmed up.
  std::size_t event_pool_capacity() const { return pool_.capacity(); }
  /// Events whose captures exceeded kEventInlineBytes and took the heap
  /// fallback.  Keep this at 0 on hot paths.
  std::uint64_t heap_fallback_events() const { return heap_fallbacks_; }

 private:
  /// EventId packing: high 40 bits scheduling sequence, low 24 bits slot.
  static constexpr unsigned kSlotBits = 24;
  static constexpr std::uint64_t kSeqMask = (1ull << 40) - 1;

  struct EventSlot {
    EventFn fn;
    std::uint64_t seq = 0;  ///< sequence of the pending event in this slot
    bool live = false;      ///< false once executed or cancelled
  };

  /// One queue entry, packed into a single 128-bit integer: execution
  /// time in the high 64 bits, the EventId key in the low 64.  The key's
  /// high bits are the scheduling sequence number, so one unsigned
  /// 128-bit compare IS the (time, FIFO tie-break) order -- two ALU
  /// instructions, no branches -- and the order is total (sequence
  /// numbers are unique).  SimTime is never negative (schedule_at
  /// enforces t >= now >= 0), so the unsigned compare is exact.
  using QueueEntry = unsigned __int128;
  static constexpr QueueEntry make_entry(SimTime time, std::uint64_t key) {
    return (static_cast<QueueEntry>(static_cast<std::uint64_t>(time)) << 64) |
           key;
  }
  static constexpr SimTime entry_time(QueueEntry e) {
    return static_cast<SimTime>(static_cast<std::uint64_t>(e >> 64));
  }
  static constexpr std::uint64_t entry_key(QueueEntry e) {
    return static_cast<std::uint64_t>(e);
  }

  /// Min-heap of queue entries, 4-ary instead of binary: half the levels
  /// of a binary heap, and each node's children are 4 consecutive
  /// 16-byte entries -- one cache line -- so the pop-side sift-down (the
  /// hot operation: every executed event pops) touches ~log4(n) lines.
  /// Any correct heap pops the same sequence under the total entry
  /// order, so the heap shape cannot perturb event order.
  class EventHeap {
   public:
    bool empty() const { return entries_.empty(); }
    std::size_t size() const { return entries_.size(); }
    QueueEntry top() const { return entries_.front(); }

    void push(QueueEntry entry) {
      std::size_t i = entries_.size();
      entries_.push_back(entry);
      while (i > 0) {
        const std::size_t parent = (i - 1) >> 2;
        if (entry >= entries_[parent]) break;
        entries_[i] = entries_[parent];
        i = parent;
      }
      entries_[i] = entry;
    }

    void pop() {
      const QueueEntry last = entries_.back();
      entries_.pop_back();
      const std::size_t n = entries_.size();
      if (n == 0) return;
      // Two sift strategies, picked adaptively per workload phase (the
      // choice only affects layout, never which entry is the min, so it
      // cannot perturb event order):
      //  * bottom-up (Wegener): walk the root hole to a leaf with
      //    child-min compares only, then bubble `last` up.  Optimal when
      //    the replacement belongs near the bottom -- steady rescheduling
      //    churn, where the newest entry is among the largest.
      //  * standard sift-down with an exit test per level.  Optimal when
      //    the replacement belongs near the top -- draining a burst of
      //    near-equal times, where bottom-up would bubble most of the
      //    way back.
      if (bottom_up_) {
        std::size_t i = 0;
        for (;;) {
          const std::size_t first = 4 * i + 1;
          if (first >= n) break;
          const std::size_t end = first + 4 < n ? first + 4 : n;
          std::size_t best = first;
          for (std::size_t c = first + 1; c < end; ++c)
            if (entries_[c] < entries_[best]) best = c;
          entries_[i] = entries_[best];
          i = best;
        }
        std::size_t rose = 0;
        while (i > 0) {
          const std::size_t parent = (i - 1) >> 2;
          if (last >= entries_[parent]) break;
          entries_[i] = entries_[parent];
          i = parent;
          ++rose;
        }
        entries_[i] = last;
        bottom_up_ = rose <= 1;
      } else {
        const std::size_t i = sift_down(0, last);
        entries_[i] = last;
        bottom_up_ = 4 * i + 1 >= n;  // landed on a leaf: bottom-up is cheaper
      }
    }

    /// Direct access for compaction sweeps; call rebuild() afterwards.
    std::vector<QueueEntry>& container() { return entries_; }

    /// Restores the heap property after the container was edited.
    void rebuild() {
      if (entries_.size() < 2) return;
      for (std::size_t i = (entries_.size() - 2) >> 2; i + 1 > 0; --i) {
        const QueueEntry value = entries_[i];
        entries_[sift_down(i, value)] = value;
      }
    }

   private:
    /// Sifts the hole at `i` down until `value` fits; returns the hole's
    /// final index (the caller stores `value` there).
    std::size_t sift_down(std::size_t i, QueueEntry value) {
      const std::size_t n = entries_.size();
      for (;;) {
        const std::size_t first = 4 * i + 1;
        if (first >= n) break;
        const std::size_t end = first + 4 < n ? first + 4 : n;
        std::size_t best = first;
        for (std::size_t c = first + 1; c < end; ++c)
          if (entries_[c] < entries_[best]) best = c;
        if (entries_[best] >= value) break;
        entries_[i] = entries_[best];
        i = best;
      }
      return i;
    }

    std::vector<QueueEntry> entries_;
    bool bottom_up_ = true;
  };

  bool live_key(std::uint64_t key) const {
    const EventSlot& slot = pool_[key & ((1u << kSlotBits) - 1)];
    return slot.live && slot.seq == key >> kSlotBits;
  }
  bool entry_live(QueueEntry entry) const { return live_key(entry_key(entry)); }

  void maybe_compact();
  void publish_telemetry();

  telemetry::Telemetry* telemetry_ = nullptr;
  ExecObserver observer_ = nullptr;
  void* observer_ctx_ = nullptr;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::uint64_t compactions_ = 0;
  std::uint64_t heap_fallbacks_ = 0;
  EventHeap queue_;
  /// Stable storage (deque-backed): step() invokes the callable in place,
  /// and a callback that schedules new events may grow the pool without
  /// relocating the storage the executing callable lives in.
  util::SlabPool<EventSlot, /*StableStorage=*/true> pool_;

  // Cached instruments (null when telemetry was disabled at construction
  // time) keep the per-event overhead to a pointer check.
  telemetry::Counter* executed_counter_ = nullptr;
  telemetry::Gauge* depth_gauge_ = nullptr;
  telemetry::Gauge* stale_gauge_ = nullptr;
  telemetry::Counter* compaction_counter_ = nullptr;
};

/// Repeating callback helper (heartbeats, samplers, retrain timers...).
/// The callback may stop the task from inside itself.
class PeriodicTask {
 public:
  PeriodicTask(Engine& engine, SimTime period, std::function<void()> fn);
  ~PeriodicTask();
  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void start(SimTime first_delay = 0);
  void stop();
  bool running() const { return running_; }

 private:
  void arm(SimTime delay);

  Engine& engine_;
  SimTime period_;
  std::function<void()> fn_;
  EventId pending_ = kInvalidEvent;
  bool running_ = false;
};

}  // namespace eslurm::sim
