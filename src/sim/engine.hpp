// Deterministic discrete-event simulation engine.
//
// The engine is the substrate every other ESLURM subsystem runs on: the
// simulated network, node failure injection, RM daemons and schedulers all
// schedule callbacks here.  Events with equal timestamps execute in
// scheduling order (FIFO tie-break), which makes whole-cluster runs
// bit-reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "util/time.hpp"

namespace eslurm::telemetry {
class Counter;
class Gauge;
struct Telemetry;
}  // namespace eslurm::telemetry

namespace eslurm::sim {

/// Handle for a scheduled event; can be used to cancel it.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class Engine {
 public:
  /// An engine optionally carries the experiment's telemetry context;
  /// subsystems built on top reach it through `telemetry()`, so one
  /// injection point covers the whole world.  A disabled context is
  /// treated as absent (instrument caching happens at construction).
  explicit Engine(telemetry::Telemetry* telemetry = nullptr);
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  SimTime now() const { return now_; }

  /// The telemetry context this world publishes to; nullptr when
  /// telemetry is off.  The fast path for instrumented code is
  /// `if (auto* t = engine.telemetry()) ...` -- one pointer check.
  telemetry::Telemetry* telemetry() const { return telemetry_; }

  /// Schedules `fn` at absolute simulated time `t` (>= now).
  EventId schedule_at(SimTime t, std::function<void()> fn);

  /// Schedules `fn` after `delay` (>= 0) from now.
  EventId schedule_after(SimTime delay, std::function<void()> fn);

  /// Cancels a pending event.  Returns false if it already ran, was
  /// already cancelled, or the id is unknown.
  bool cancel(EventId id);

  bool has_pending() const { return !handlers_.empty(); }
  std::size_t pending_count() const { return handlers_.size(); }

  /// Executes the next event.  Returns false if the queue is empty.
  bool step();

  /// Runs events until the queue drains or the horizon passes.  The clock
  /// is left at min(horizon, last event time).  Events scheduled exactly
  /// at the horizon still execute.
  void run_until(SimTime horizon);

  /// Runs until no events remain.
  void run();

  /// Total number of executed events (for sanity checks / reports).
  std::uint64_t executed_events() const { return executed_; }

  // --- queue hygiene ---------------------------------------------------
  /// Total priority-queue entries, live plus cancelled-but-unpopped.
  std::size_t queue_size() const { return queue_.size(); }
  /// Cancelled entries still occupying queue slots.  `cancel()` only
  /// erases the handler; the entry stays queued until its timestamp is
  /// reached or a compaction sweeps it.
  std::size_t stale_entries() const { return queue_.size() - handlers_.size(); }
  /// Stale fraction of the queue (0 when empty).
  double stale_ratio() const {
    return queue_.empty() ? 0.0
                          : static_cast<double>(stale_entries()) /
                                static_cast<double>(queue_.size());
  }
  /// Times the queue was compacted because stale entries exceeded half
  /// of it.  Watchdog-heavy workloads (broadcast trees arm one watchdog
  /// per child and cancel nearly all of them) previously grew the queue
  /// until the cancelled timestamps were reached.
  std::uint64_t compactions() const { return compactions_; }

 private:
  struct QueueEntry {
    SimTime time;
    EventId id;
    bool operator>(const QueueEntry& o) const {
      return time != o.time ? time > o.time : id > o.id;
    }
  };
  /// priority_queue with access to the underlying vector for compaction.
  class Queue : public std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                                           std::greater<>> {
   public:
    std::vector<QueueEntry>& container() { return c; }
  };

  void maybe_compact();
  void publish_telemetry();

  telemetry::Telemetry* telemetry_ = nullptr;
  SimTime now_ = 0;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::uint64_t compactions_ = 0;
  Queue queue_;
  std::unordered_map<EventId, std::function<void()>> handlers_;

  // Cached instruments (null when telemetry was disabled at construction
  // time) keep the per-event overhead to a pointer check.
  telemetry::Counter* executed_counter_ = nullptr;
  telemetry::Gauge* depth_gauge_ = nullptr;
  telemetry::Gauge* stale_gauge_ = nullptr;
  telemetry::Counter* compaction_counter_ = nullptr;
};

/// Repeating callback helper (heartbeats, samplers, retrain timers...).
/// The callback may stop the task from inside itself.
class PeriodicTask {
 public:
  PeriodicTask(Engine& engine, SimTime period, std::function<void()> fn);
  ~PeriodicTask();
  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void start(SimTime first_delay = 0);
  void stop();
  bool running() const { return running_; }

 private:
  void arm(SimTime delay);

  Engine& engine_;
  SimTime period_;
  std::function<void()> fn_;
  EventId pending_ = kInvalidEvent;
  bool running_ = false;
};

}  // namespace eslurm::sim
