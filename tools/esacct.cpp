// esacct -- query an accounting database written by esim (the sacct /
// sreport equivalent).
//
//   esacct jobs.acct                      # per-user usage summary
//   esacct jobs.acct --user alice         # that user's jobs
//   esacct jobs.acct --state TIMEOUT      # jobs killed at their limit
#include <cstdio>
#include <fstream>

#include "rm/accounting_storage.hpp"
#include "util/args.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace eslurm;

int main(int argc, char** argv) {
  ArgParser args;
  args.add_option("user", "filter: user name");
  args.add_option("name", "filter: job name");
  args.add_option("state", "filter: COMPLETED | TIMEOUT | CANCELLED | FAILED");
  args.add_flag("summary", "force the per-user summary even with filters");
  if (!args.parse(argc, argv)) {
    std::fprintf(stderr, "esacct: %s\n", args.error().c_str());
    return 2;
  }
  if (args.help_requested() || args.positional().empty()) {
    std::fputs(args.usage("esacct <file.acct>", "Query a job-accounting database.")
                   .c_str(),
               stdout);
    return args.help_requested() ? 0 : 2;
  }

  std::ifstream file(args.positional()[0]);
  if (!file) {
    std::fprintf(stderr, "esacct: cannot read '%s'\n", args.positional()[0].c_str());
    return 1;
  }
  const auto db = rm::AccountingStorage::load(file);

  rm::JobFilter filter;
  bool filtered = false;
  if (const auto user = args.get("user")) {
    filter.user = *user;
    filtered = true;
  }
  if (const auto name = args.get("name")) {
    filter.name = *name;
    filtered = true;
  }
  if (const auto state = args.get("state")) {
    filtered = true;
    if (*state == "TIMEOUT") filter.state = sched::JobState::TimedOut;
    else if (*state == "CANCELLED") filter.state = sched::JobState::Cancelled;
    else if (*state == "FAILED") filter.state = sched::JobState::Failed;
    else filter.state = sched::JobState::Completed;
  }

  if (filtered && !args.has_flag("summary")) {
    Table table({"JOBID", "USER", "NAME", "PART", "NODES", "WAIT(s)", "RUN(s)",
                 "STATE"});
    for (const auto& record : db.query(filter))
      table.add_row({std::to_string(record.id), record.user, record.name,
                     record.partition, std::to_string(record.nodes),
                     format_double(to_seconds(record.wait()), 4),
                     format_double(to_seconds(record.runtime()), 4),
                     sched::job_state_name(record.final_state)});
    table.print();
    return 0;
  }

  std::printf("%zu jobs, %.1f node-hours total\n\n", db.size(),
              db.total_node_hours());
  Table table({"USER", "JOBS", "NODE-HOURS", "AVG WAIT (s)"});
  for (const auto& usage : db.usage_by_user())
    table.add_row({usage.user, std::to_string(usage.jobs),
                   format_double(usage.node_hours, 4),
                   format_double(usage.avg_wait_seconds, 4)});
  table.print();
  return 0;
}
