// estrace -- generate and analyze workload traces.
//
//   estrace generate --profile ng-tianhe --days 7 --jobs 10000 --out w.trace
//   estrace stats w.trace
//
// `generate` writes a synthetic trace in the eslurm-trace format;
// `stats` reproduces the Fig. 5-style analyses for any trace file.
#include <cstdio>
#include <fstream>
#include <iostream>

#include "trace/generator.hpp"
#include "trace/statistics.hpp"
#include "trace/swf.hpp"
#include "trace/trace_io.hpp"
#include "util/args.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace eslurm;

namespace {

int cmd_generate(const ArgParser& args) {
  const std::string profile_name = args.get_or("profile", "tianhe-2a");
  trace::WorkloadProfile profile = profile_name == "ng-tianhe"
                                       ? trace::ng_tianhe_profile()
                                       : trace::tianhe2a_profile();
  if (const auto seed = args.get("seed"))
    profile.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const SimTime duration = days(args.get_int("days", 7));
  trace::TraceGenerator generator(profile);
  const auto jobs =
      args.get("jobs")
          ? generator.generate_jobs(
                static_cast<std::size_t>(args.get_int("jobs", 10000)), duration)
          : generator.generate(duration);

  const bool swf = args.get_or("format", "native") == "swf";
  auto write = [&](std::ostream& os) {
    if (swf)
      trace::write_swf(os, jobs);
    else
      trace::write_trace(os, jobs);
  };
  const std::string out = args.get_or("out", "-");
  if (out == "-") {
    write(std::cout);
  } else {
    std::ofstream file(out);
    if (!file) {
      std::fprintf(stderr, "estrace: cannot write '%s'\n", out.c_str());
      return 1;
    }
    write(file);
    std::fprintf(stderr, "estrace: %zu jobs written to %s (%s)\n", jobs.size(),
                 out.c_str(), swf ? "swf" : "native");
  }
  return 0;
}

/// Reads a trace in either format, keyed by the --format option or the
/// file extension (.swf).
std::vector<sched::Job> read_any(const ArgParser& args, const std::string& path,
                                 std::istream& is) {
  const std::string format = args.get_or("format", "auto");
  const bool swf = format == "swf" ||
                   (format == "auto" && path.size() > 4 &&
                    path.substr(path.size() - 4) == ".swf");
  return swf ? trace::read_swf(is) : trace::read_trace(is);
}

int cmd_stats(const ArgParser& args) {
  if (args.positional().size() < 2) {
    std::fprintf(stderr, "estrace stats: trace file required\n");
    return 2;
  }
  std::ifstream file(args.positional()[1]);
  if (!file) {
    std::fprintf(stderr, "estrace: cannot read '%s'\n", args.positional()[1].c_str());
    return 1;
  }
  const auto jobs = read_any(args, args.positional()[1], file);
  std::printf("%zu jobs\n\n", jobs.size());

  const auto samples = trace::estimate_accuracy_samples(jobs);
  std::size_t over = 0;
  for (const double p : samples)
    if (p > 1.0) ++over;
  std::printf("runtime estimates overestimated: %.1f%%\n",
              samples.empty() ? 0.0 : 100.0 * over / samples.size());
  std::printf(">6h jobs submitted 18:00-24:00 : %.1f%%\n",
              100.0 * trace::long_job_evening_fraction(jobs));
  std::printf("resubmit-within-24h probability: %.1f%%\n\n",
              100.0 * trace::resubmit_within_24h_fraction(jobs));

  const std::vector<double> edges{1, 5, 10, 20, 30, 40, 50};
  const auto curve = trace::correlation_vs_interval(jobs, edges);
  Table table({"interval <= (h)", "correlation ratio", "pairs"});
  for (std::size_t i = 0; i < edges.size(); ++i)
    table.add_row({format_double(edges[i], 3), format_double(curve.ratio[i], 3),
                   std::to_string(curve.pairs[i])});
  table.print();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args;
  args.add_option("profile", "workload profile: tianhe-2a | ng-tianhe", "tianhe-2a");
  args.add_option("days", "trace duration in days", "7");
  args.add_option("jobs", "approximate job count (default: profile rate)");
  args.add_option("seed", "generator seed");
  args.add_option("out", "output file ('-' = stdout)", "-");
  args.add_option("format", "trace format: native | swf | auto", "auto");
  if (!args.parse(argc, argv)) {
    std::fprintf(stderr, "estrace: %s\n", args.error().c_str());
    return 2;
  }
  if (args.help_requested() || args.positional().empty()) {
    std::fputs(args.usage("estrace <generate|stats> [file]",
                          "Generate and analyze workload traces.")
                   .c_str(),
               stdout);
    return args.help_requested() ? 0 : 2;
  }
  const std::string command = args.positional()[0];
  if (command == "generate") return cmd_generate(args);
  if (command == "stats") return cmd_stats(args);
  std::fprintf(stderr, "estrace: unknown command '%s'\n", command.c_str());
  return 2;
}
