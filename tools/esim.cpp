// esim -- run a resource-management experiment from the command line.
//
//   esim --config cluster.conf --trace workload.trace
//   esim --rm slurm --nodes 4096 --profile tianhe-2a --jobs 2000 --hours 24
//   esim --rm eslurm --nodes 20480 --satellites 20 --profile ng-tianhe \
//        --jobs 5000 --hours 48 --acct out.acct
//
// Either replays a trace file (trace_io format) or generates a workload
// from a named profile, runs the simulated cluster, and prints the
// scheduling report, master resource usage, and (for ESLURM) the
// satellite table.  Optionally dumps the accounting database.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/experiment.hpp"
#include "trace/generator.hpp"
#include "trace/trace_io.hpp"
#include "util/args.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace eslurm;

int main(int argc, char** argv) {
  ArgParser args;
  args.add_option("config", "slurm.conf-style experiment description file");
  args.add_option("rm", "resource manager (overrides config)", "");
  args.add_option("nodes", "compute node count (overrides config)", "");
  args.add_option("satellites", "satellite count (overrides config)", "");
  args.add_option("hours", "simulated horizon in hours", "24");
  args.add_option("seed", "experiment seed", "42");
  args.add_option("trace", "workload trace file to replay");
  args.add_option("profile", "generate workload: tianhe-2a | ng-tianhe", "tianhe-2a");
  args.add_option("jobs", "generate workload: approximate job count", "2000");
  args.add_option("acct", "write the accounting database to this file");
  args.add_flag("estimation", "enable the runtime-estimation framework");
  args.add_flag("failures", "enable failure injection");
  args.add_option("chaos-drop", "message drop probability (0-1)", "0");
  args.add_option("chaos-dup", "message duplication probability (0-1)", "0");
  args.add_option("chaos-delay", "delay-spike probability (0-1)", "0");
  args.add_option("chaos-delay-ms", "mean delay-spike size in ms", "250");
  args.add_option("chaos-partition",
                  "master<->satellite partition as start:duration seconds");
  args.add_flag("no-reliable-transport",
                "raw sends for RM control traffic (no retry/backoff/dedup)");
  if (!args.parse(argc, argv)) {
    std::fprintf(stderr, "esim: %s\n", args.error().c_str());
    return 2;
  }
  if (args.help_requested()) {
    std::fputs(args.usage("esim", "Run an ESLURM-simulator experiment.").c_str(),
               stdout);
    return 0;
  }

  // Build the configuration: file first, flags override.
  core::ExperimentConfig config;
  if (const auto path = args.get("config")) {
    std::ifstream file(*path);
    if (!file) {
      std::fprintf(stderr, "esim: cannot read config '%s'\n", path->c_str());
      return 1;
    }
    std::ostringstream text;
    text << file.rdbuf();
    config = core::Experiment::config_from_text(text.str());
  }
  if (const auto rm = args.get("rm"); rm && !rm->empty()) config.rm = *rm;
  if (const auto nodes = args.get("nodes"); nodes && !nodes->empty())
    config.compute_nodes = static_cast<std::size_t>(args.get_int("nodes", 1024));
  if (const auto satellites = args.get("satellites"); satellites && !satellites->empty())
    config.satellite_count = static_cast<std::size_t>(args.get_int("satellites", 2));
  config.horizon = hours(args.get_int("hours", 24));
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  if (args.has_flag("estimation")) config.rm_config.use_runtime_estimation = true;
  if (args.has_flag("failures")) config.enable_failures = true;
  config.chaos.drop_prob = args.get_double("chaos-drop", config.chaos.drop_prob);
  config.chaos.duplicate_prob =
      args.get_double("chaos-dup", config.chaos.duplicate_prob);
  config.chaos.delay_spike_prob =
      args.get_double("chaos-delay", config.chaos.delay_spike_prob);
  config.chaos.delay_spike_ms =
      args.get_double("chaos-delay-ms", config.chaos.delay_spike_ms);
  if (const auto partition = args.get("chaos-partition");
      partition && !partition->empty()) {
    const auto colon = partition->find(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "esim: --chaos-partition wants start:duration\n");
      return 2;
    }
    config.chaos.partition_start_s = std::stod(partition->substr(0, colon));
    config.chaos.partition_duration_s = std::stod(partition->substr(colon + 1));
  }
  if (args.has_flag("no-reliable-transport")) {
    config.rm_config.use_reliable_transport = false;
    config.frontend.gateway.reliable_responses = false;
  }

  // Workload: trace file or generated.
  std::vector<sched::Job> jobs;
  if (const auto path = args.get("trace")) {
    std::ifstream file(*path);
    if (!file) {
      std::fprintf(stderr, "esim: cannot read trace '%s'\n", path->c_str());
      return 1;
    }
    jobs = trace::read_trace(file);
  } else {
    const std::string profile_name = args.get_or("profile", "tianhe-2a");
    trace::WorkloadProfile profile = profile_name == "ng-tianhe"
                                         ? trace::ng_tianhe_profile()
                                         : trace::tianhe2a_profile();
    profile.max_nodes_per_job =
        std::min<int>(profile.max_nodes_per_job,
                      static_cast<int>(config.compute_nodes));
    trace::TraceGenerator generator(profile);
    jobs = generator.generate_jobs(
        static_cast<std::size_t>(args.get_int("jobs", 2000)), config.horizon);
  }

  std::printf("esim: %s on %zu nodes, %zu jobs, %lld h horizon, seed %llu\n",
              config.rm.c_str(), config.compute_nodes, jobs.size(),
              static_cast<long long>(config.horizon / hours(1)),
              static_cast<unsigned long long>(config.seed));

  core::Experiment experiment(config);
  experiment.submit_trace(jobs);
  experiment.run();

  const auto report = experiment.report();
  std::printf("\n=== scheduling report ===\n");
  std::printf("jobs finished        : %zu (%zu timed out)\n", report.jobs_finished,
              report.jobs_timed_out);
  std::printf("system utilization   : %.1f%%\n", 100.0 * report.system_utilization);
  std::printf("avg / p95 wait       : %.1f s / %.1f s\n", report.avg_wait_seconds,
              report.p95_wait_seconds);
  std::printf("avg bounded slowdown : %.2f\n", report.avg_bounded_slowdown);
  std::printf("launch requeues      : %llu, master crashes: %llu\n",
              (unsigned long long)experiment.manager().launch_requeues(),
              (unsigned long long)experiment.manager().crash_count());

  const auto& stats = experiment.manager().master_stats();
  std::printf("\n=== master daemon ===\n");
  std::printf("CPU time %.1f min | RSS %.1f MB | vmem %.2f GB | peak sockets %.0f\n",
              stats.cpu_seconds() / 60.0, stats.rss_mb(), stats.vmem_gb(),
              stats.socket_series().max_value());

  if (auto* eslurm_rm = experiment.eslurm()) {
    std::printf("\n=== satellites ===\n");
    Table table({"node", "state", "tasks", "avg nodes/task", "RSS (MB)"});
    for (const auto& sat : eslurm_rm->satellite_reports())
      table.add_row({std::to_string(sat.node), rm::satellite_state_name(sat.state),
                     std::to_string(sat.tasks_received),
                     format_double(sat.avg_nodes_per_task, 4),
                     format_double(sat.rss_mb, 4)});
    table.print();
  }

  if (auto* chaos = experiment.chaos()) {
    std::printf("\n=== network chaos ===\n");
    std::printf("dropped %llu (partitioned %llu) | duplicated %llu | delayed %llu\n",
                (unsigned long long)chaos->dropped(),
                (unsigned long long)chaos->partitioned(),
                (unsigned long long)chaos->duplicated(),
                (unsigned long long)chaos->delayed());
  }

  if (const auto path = args.get("acct")) {
    std::ofstream file(*path);
    experiment.manager().accounting_db().save(file);
    std::printf("\naccounting database written to %s (%zu records)\n", path->c_str(),
                experiment.manager().accounting_db().size());
  }
  return 0;
}
