// esprof -- summarize telemetry artifacts written with --telemetry-out /
// --telemetry-dir (Chrome trace-event JSON with an embedded metrics
// snapshot) into paper-style tables: span durations grouped by name,
// counter tracks, instant-event counts, and the metrics registry with
// percentiles.
//
//   esprof trace.json                 # full summary of one artifact
//   esprof trace.json --spans         # span table only
//   esprof trace.json --metrics       # registry only
//   esprof trace.json --cat comm      # restrict events to one category
//   esprof sweep/*.trace.json         # merged per-point comparison: one
//                                     # column per artifact, counters /
//                                     # gauges / histogram means side by
//                                     # side (e.g. a sweep's points)
//   esprof BENCH_engine.json          # bench artifact (--json) summary
//   esprof before/BENCH_engine.json after/BENCH_engine.json
//                                     # bench diff: run-level envelope
//                                     # (events/sec, wall, peak RSS) and
//                                     # per-point metric means side by
//                                     # side, with after/before ratios
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <optional>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "telemetry/json.hpp"
#include "util/args.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace eslurm;
using telemetry::JsonValue;

namespace {

struct SpanGroup {
  std::size_t count = 0;
  double total_ms = 0.0;
  double max_ms = 0.0;
};

double member_number(const JsonValue& object, const char* key, double fallback = 0.0) {
  const JsonValue* v = object.find(key);
  return v && v->is_number() ? v->as_number() : fallback;
}

std::string member_string(const JsonValue& object, const char* key) {
  const JsonValue* v = object.find(key);
  return v && v->is_string() ? v->as_string() : std::string();
}

void summarize_events(const JsonValue& events, const std::string& category_filter) {
  std::map<std::string, SpanGroup> spans;
  std::map<std::string, std::size_t> instants;
  std::map<std::string, std::pair<std::size_t, double>> counters;  // samples, last
  double t_min = 0.0, t_max = 0.0;
  bool any = false;

  for (const JsonValue& event : events.items()) {
    if (!event.is_object()) continue;
    const std::string cat = member_string(event, "cat");
    if (!category_filter.empty() && cat != category_filter) continue;
    const std::string name = member_string(event, "name");
    const std::string ph = member_string(event, "ph");
    const double ts = member_number(event, "ts");  // microseconds
    const double end = ts + member_number(event, "dur");
    if (!any || ts < t_min) t_min = ts;
    if (!any || end > t_max) t_max = end;
    any = true;
    if (ph == "X") {
      const double dur_ms = member_number(event, "dur") / 1e3;
      SpanGroup& group = spans[name];
      ++group.count;
      group.total_ms += dur_ms;
      group.max_ms = std::max(group.max_ms, dur_ms);
    } else if (ph == "i" || ph == "I") {
      ++instants[name];
    } else if (ph == "C") {
      auto& [samples, last] = counters[name];
      ++samples;
      if (const JsonValue* args = event.find("args"))
        last = member_number(*args, "value", last);
    }
  }

  if (any)
    std::printf("trace window: %.3f s of simulated time\n\n", (t_max - t_min) / 1e6);

  if (!spans.empty()) {
    std::printf("spans (ph=X)\n");
    Table table({"name", "count", "total (ms)", "mean (ms)", "max (ms)"});
    for (const auto& [name, group] : spans)
      table.add_row({name, std::to_string(group.count),
                     format_double(group.total_ms, 4),
                     format_double(group.total_ms / static_cast<double>(group.count), 4),
                     format_double(group.max_ms, 4)});
    table.print();
    std::printf("\n");
  }
  if (!counters.empty()) {
    std::printf("counter tracks (ph=C)\n");
    Table table({"name", "samples", "last value"});
    for (const auto& [name, entry] : counters)
      table.add_row({name, std::to_string(entry.first),
                     format_double(entry.second, 4)});
    table.print();
    std::printf("\n");
  }
  if (!instants.empty()) {
    std::printf("instant events (ph=i)\n");
    Table table({"name", "count"});
    for (const auto& [name, count] : instants)
      table.add_row({name, std::to_string(count)});
    table.print();
    std::printf("\n");
  }
}

void summarize_metrics(const JsonValue& metrics) {
  const JsonValue* counters = metrics.find("counters");
  if (counters && counters->is_object() && !counters->members().empty()) {
    std::printf("counters\n");
    Table table({"name", "value"});
    for (const auto& [name, value] : counters->members())
      table.add_row({name, format_double(value.as_number(), 6)});
    table.print();
    std::printf("\n");
  }
  const JsonValue* gauges = metrics.find("gauges");
  if (gauges && gauges->is_object() && !gauges->members().empty()) {
    std::printf("gauges\n");
    Table table({"name", "value"});
    for (const auto& [name, value] : gauges->members())
      table.add_row({name, format_double(value.as_number(), 6)});
    table.print();
    std::printf("\n");
  }
  const JsonValue* histograms = metrics.find("histograms");
  if (histograms && histograms->is_object() && !histograms->members().empty()) {
    std::printf("histograms\n");
    Table table({"name", "count", "mean", "p50", "p95", "p99", "max"});
    for (const auto& [name, h] : histograms->members()) {
      const double count = member_number(h, "count");
      const double sum = member_number(h, "sum");
      table.add_row({name, format_double(count, 6),
                     format_double(count > 0 ? sum / count : 0.0, 4),
                     format_double(member_number(h, "p50"), 4),
                     format_double(member_number(h, "p95"), 4),
                     format_double(member_number(h, "p99"), 4),
                     format_double(member_number(h, "max"), 4)});
    }
    table.print();
    std::printf("\n");
  }
}

struct Artifact {
  std::string label;  ///< file stem, used as the column header
  JsonValue document;
};

std::optional<Artifact> load_artifact(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "esprof: cannot read '%s'\n", path.c_str());
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  std::string error;
  auto document = telemetry::parse_json(buffer.str(), &error);
  if (!document) {
    std::fprintf(stderr, "esprof: '%s' is not valid JSON: %s\n", path.c_str(),
                 error.c_str());
    return std::nullopt;
  }
  std::string label = std::filesystem::path(path).filename().string();
  // Strip the ".trace.json" / ".json" suffix for narrower columns.
  for (const char* suffix : {".trace.json", ".json"}) {
    if (label.size() > std::strlen(suffix) &&
        label.rfind(suffix) == label.size() - std::strlen(suffix)) {
      label.resize(label.size() - std::strlen(suffix));
      break;
    }
  }
  return Artifact{std::move(label), std::move(*document)};
}

/// The metrics snapshot of an artifact (combined or bare form).
const JsonValue* metrics_of(const JsonValue& document) {
  if (const JsonValue* metrics = document.find("metrics")) return metrics;
  if (document.find("counters")) return &document;
  return nullptr;
}

/// Merged mode: one column per artifact, one table per metric kind.
/// Rows are the union of the metric names, "-" where an artifact lacks
/// one, so sweep points with divergent instrumentation still line up.
void summarize_merged(const std::vector<Artifact>& artifacts) {
  auto collect = [&](const char* section,
                     const std::function<double(const JsonValue&)>& value_of) {
    std::map<std::string, std::vector<std::optional<double>>> rows;
    for (std::size_t a = 0; a < artifacts.size(); ++a) {
      const JsonValue* metrics = metrics_of(artifacts[a].document);
      const JsonValue* values = metrics ? metrics->find(section) : nullptr;
      if (!values || !values->is_object()) continue;
      for (const auto& [name, value] : values->members()) {
        auto& row = rows[name];
        row.resize(artifacts.size());
        row[a] = value_of(value);
      }
    }
    return rows;
  };
  auto print_grid = [&](const char* heading, const char* name_column,
                        const std::map<std::string,
                                       std::vector<std::optional<double>>>& rows) {
    if (rows.empty()) return;
    std::printf("%s\n", heading);
    std::vector<std::string> header{name_column};
    for (const Artifact& artifact : artifacts) header.push_back(artifact.label);
    Table table(header);
    for (const auto& [name, values] : rows) {
      std::vector<std::string> cells{name};
      for (std::size_t a = 0; a < artifacts.size(); ++a)
        cells.push_back(a < values.size() && values[a]
                            ? format_double(*values[a], 6)
                            : "-");
      table.add_row(std::move(cells));
    }
    table.print();
    std::printf("\n");
  };

  std::printf("merged summary of %zu artifacts\n\n", artifacts.size());
  {
    // Overview: trace-event counts per artifact.
    std::vector<std::string> header{"artifact", "trace events"};
    Table table({"artifact", "trace events"});
    for (const Artifact& artifact : artifacts) {
      const JsonValue* events = artifact.document.find("traceEvents");
      table.add_row({artifact.label,
                     events && events->is_array()
                         ? std::to_string(events->items().size())
                         : "-"});
    }
    table.print();
    std::printf("\n");
  }
  const auto number = [](const JsonValue& v) {
    return v.is_number() ? v.as_number() : 0.0;
  };
  print_grid("counters", "counter", collect("counters", number));
  print_grid("gauges", "gauge", collect("gauges", number));
  print_grid("histogram means", "histogram", collect("histograms", [](const JsonValue& h) {
               const double count = member_number(h, "count");
               return count > 0 ? member_number(h, "sum") / count : 0.0;
             }));
}

// --- bench artifacts (schema "eslurm-bench-v*", written by --json) ------

bool is_bench_artifact(const JsonValue& document) {
  const JsonValue* schema = document.find("schema");
  return schema && schema->is_string() &&
         schema->as_string().rfind("eslurm-bench", 0) == 0;
}

/// Run-level envelope fields, in display order.  events_per_sec may be
/// JSON null (benches with no simulated events), surfaced as "-".
constexpr const char* kBenchRunFields[] = {"wall_seconds", "total_events",
                                           "events_per_sec", "peak_rss_bytes"};

std::optional<double> bench_run_field(const JsonValue& document, const char* key) {
  const JsonValue* value = document.find(key);
  if (!value || !value->is_number()) return std::nullopt;
  return value->as_number();
}

/// Per-point metric means, keyed "label :: metric" so artifacts line up
/// across runs even when point order differs.
std::map<std::string, double> bench_point_means(const JsonValue& document) {
  std::map<std::string, double> out;
  const JsonValue* points = document.find("points");
  if (!points || !points->is_array()) return out;
  for (const JsonValue& point : points->items()) {
    if (!point.is_object()) continue;
    const std::string label = member_string(point, "label");
    const JsonValue* metrics = point.find("metrics");
    if (!metrics || !metrics->is_object()) continue;
    for (const auto& [name, stats] : metrics->members())
      out[label + " :: " + name] = member_number(stats, "mean");
  }
  return out;
}

// --- the HA failover sweep (BENCH_ha_failover.json) ---------------------
//
// This artifact carries two hard invariants -- jobs_lost == 0 and
// duplicate_launches == 0 at every sweep point -- so instead of leaving
// them buried in the generic means grid, surface a focused table of the
// headline fields and an explicit verdict line.

bool is_ha_failover_bench(const JsonValue& document) {
  return member_string(document, "bench") == "ha_failover";
}

constexpr const char* kFailoverFields[] = {"jobs_lost", "duplicate_launches",
                                           "takeover_ms", "wal_bytes"};

/// label -> (field -> mean) for a headline field subset, in point order.
template <std::size_t N>
std::vector<std::pair<std::string, std::map<std::string, double>>>
headline_points(const JsonValue& document, const char* const (&wanted)[N]) {
  std::vector<std::pair<std::string, std::map<std::string, double>>> out;
  const JsonValue* points = document.find("points");
  if (!points || !points->is_array()) return out;
  for (const JsonValue& point : points->items()) {
    if (!point.is_object()) continue;
    const JsonValue* metrics = point.find("metrics");
    if (!metrics || !metrics->is_object()) continue;
    std::map<std::string, double> fields;
    for (const char* field : wanted)
      if (const JsonValue* stats = metrics->find(field))
        fields[field] = member_number(*stats, "mean");
    out.emplace_back(member_string(point, "label"), std::move(fields));
  }
  return out;
}

std::vector<std::pair<std::string, std::map<std::string, double>>>
failover_points(const JsonValue& document) {
  return headline_points(document, kFailoverFields);
}

void print_failover_verdict(
    const std::vector<std::pair<std::string, std::map<std::string, double>>>&
        points) {
  std::size_t violations = 0;
  for (const auto& [label, fields] : points) {
    const auto lost = fields.find("jobs_lost");
    const auto dup = fields.find("duplicate_launches");
    if ((lost != fields.end() && lost->second != 0.0) ||
        (dup != fields.end() && dup->second != 0.0)) {
      ++violations;
      std::printf("  VIOLATED at %s\n", label.c_str());
    }
  }
  if (violations == 0)
    std::printf("failover invariants: OK (jobs_lost == 0 and "
                "duplicate_launches == 0 at all %zu points)\n\n",
                points.size());
  else
    std::printf("failover invariants: VIOLATED at %zu of %zu points\n\n",
                violations, points.size());
}

void summarize_failover(const JsonValue& document) {
  const auto points = failover_points(document);
  if (points.empty()) return;
  std::printf("failover headline (per point)\n");
  Table table({"point", "jobs lost", "dup launches", "takeover (ms)",
               "wal bytes"});
  for (const auto& [label, fields] : points) {
    std::vector<std::string> row{label};
    for (const char* field : kFailoverFields) {
      const auto it = fields.find(field);
      row.push_back(it != fields.end() ? format_double(it->second, 6) : "-");
    }
    table.add_row(std::move(row));
  }
  table.print();
  print_failover_verdict(points);
}

/// Diff counterpart: headline fields side by side per artifact, then one
/// verdict line per artifact.
void diff_failover(const std::vector<Artifact>& artifacts) {
  std::vector<std::string> header{"point :: field"};
  for (const Artifact& artifact : artifacts) header.push_back(artifact.label);
  const bool ratio = artifacts.size() == 2;
  if (ratio) header.push_back("ratio");

  std::map<std::string, std::vector<std::optional<double>>> rows;
  std::vector<std::string> order;
  for (std::size_t a = 0; a < artifacts.size(); ++a) {
    for (const auto& [label, fields] : failover_points(artifacts[a].document)) {
      for (const char* field : kFailoverFields) {
        const auto it = fields.find(field);
        if (it == fields.end()) continue;
        const std::string key = label + " :: " + field;
        auto [entry, inserted] = rows.try_emplace(key);
        if (inserted) order.push_back(key);
        entry->second.resize(artifacts.size());
        entry->second[a] = it->second;
      }
    }
  }
  if (rows.empty()) return;
  std::printf("failover headline (per point)\n");
  Table table(header);
  for (const std::string& key : order) {
    auto& values = rows[key];
    values.resize(artifacts.size());
    std::vector<std::string> cells{key};
    for (const auto& value : values)
      cells.push_back(value ? format_double(*value, 6) : "-");
    if (ratio)
      cells.push_back(values[0] && values[1] && *values[0] != 0.0
                          ? format_double(*values[1] / *values[0], 4)
                          : "-");
    table.add_row(std::move(cells));
  }
  table.print();
  std::printf("\n");
  for (const Artifact& artifact : artifacts) {
    std::printf("%s: ", artifact.label.c_str());
    print_failover_verdict(failover_points(artifact.document));
  }
}

// --- the scheduler policy suite (BENCH_policy_suite.json) ---------------
//
// Per-QoS-class headline: the sweep's whole point is the per-class wait
// split and three hard invariants (limit_violations == 0,
// reservation_intrusions == 0, jobs_lost == 0), so surface them as a
// focused table plus a verdict line, like the failover artifact.

bool is_policy_suite_bench(const JsonValue& document) {
  return member_string(document, "bench") == "policy_suite";
}

constexpr const char* kPolicyFields[] = {
    "wait_p95_high_s", "wait_p95_normal_s",      "wait_p95_low_s",
    "bsld_high",       "limit_violations",       "reservation_intrusions",
    "preempt_requeues", "jobs_lost"};

void print_policy_verdict(
    const std::vector<std::pair<std::string, std::map<std::string, double>>>&
        points) {
  std::size_t violations = 0;
  for (const auto& [label, fields] : points) {
    for (const char* invariant :
         {"limit_violations", "reservation_intrusions", "jobs_lost"}) {
      const auto it = fields.find(invariant);
      if (it != fields.end() && it->second != 0.0) {
        ++violations;
        std::printf("  VIOLATED at %s (%s = %g)\n", label.c_str(), invariant,
                    it->second);
      }
    }
  }
  if (violations == 0)
    std::printf("policy invariants: OK (limit_violations, "
                "reservation_intrusions and jobs_lost all 0 at all %zu "
                "points)\n\n",
                points.size());
  else
    std::printf("policy invariants: VIOLATED %zu time(s) across %zu points\n\n",
                violations, points.size());
}

void summarize_policy(const JsonValue& document) {
  const auto points = headline_points(document, kPolicyFields);
  if (points.empty()) return;
  std::printf("per-QoS-class headline (per arm/mix point)\n");
  Table table({"point", "hi p95 w(s)", "no p95 w(s)", "lo p95 w(s)", "hi bsld",
               "limit viol", "resv intr", "preempt rq", "lost"});
  for (const auto& [label, fields] : points) {
    std::vector<std::string> row{label};
    for (const char* field : kPolicyFields) {
      const auto it = fields.find(field);
      row.push_back(it != fields.end() ? format_double(it->second, 6) : "-");
    }
    table.add_row(std::move(row));
  }
  table.print();
  print_policy_verdict(points);
}

/// Diff counterpart: per-class fields side by side, verdict per artifact.
void diff_policy(const std::vector<Artifact>& artifacts) {
  std::vector<std::string> header{"point :: field"};
  for (const Artifact& artifact : artifacts) header.push_back(artifact.label);
  const bool ratio = artifacts.size() == 2;
  if (ratio) header.push_back("ratio");

  std::map<std::string, std::vector<std::optional<double>>> rows;
  std::vector<std::string> order;
  for (std::size_t a = 0; a < artifacts.size(); ++a) {
    for (const auto& [label, fields] :
         headline_points(artifacts[a].document, kPolicyFields)) {
      for (const char* field : kPolicyFields) {
        const auto it = fields.find(field);
        if (it == fields.end()) continue;
        const std::string key = label + " :: " + field;
        auto [entry, inserted] = rows.try_emplace(key);
        if (inserted) order.push_back(key);
        entry->second.resize(artifacts.size());
        entry->second[a] = it->second;
      }
    }
  }
  if (rows.empty()) return;
  std::printf("per-QoS-class headline (per arm/mix point)\n");
  Table table(header);
  for (const std::string& key : order) {
    auto& values = rows[key];
    values.resize(artifacts.size());
    std::vector<std::string> cells{key};
    for (const auto& value : values)
      cells.push_back(value ? format_double(*value, 6) : "-");
    if (ratio)
      cells.push_back(values[0] && values[1] && *values[0] != 0.0
                          ? format_double(*values[1] / *values[0], 4)
                          : "-");
    table.add_row(std::move(cells));
  }
  table.print();
  std::printf("\n");
  for (const Artifact& artifact : artifacts) {
    std::printf("%s: ", artifact.label.c_str());
    print_policy_verdict(headline_points(artifact.document, kPolicyFields));
  }
}

// --- the fault-tolerance sweep (BENCH_fault_tolerance.json) -------------
//
// Four recovery arms per (mtbf, drop) point, with three hard invariants
// across the arms of each point: baseline must fail jobs (the failure
// pressure is real), every retry arm must fail zero, and lost
// node-seconds must strictly decrease retry -> retry+ckpt -> +placement
// (with +placement beating baseline).  Surface the headline fields and
// an explicit verdict, like the failover artifact.

bool is_fault_tolerance_bench(const JsonValue& document) {
  return member_string(document, "bench") == "fault_tolerance";
}

constexpr const char* kFaultFields[] = {"jobs_completed",    "jobs_failed",
                                        "failure_rate",      "lost_node_seconds",
                                        "ckpt_node_seconds", "goodput"};

void print_fault_verdict(
    const std::vector<std::pair<std::string, std::map<std::string, double>>>&
        points) {
  // Point labels are "mtbf=24h/drop=0.00/<arm>": group the four arms of
  // each sweep point by the label prefix before the last '/'.
  std::map<std::string, std::map<std::string, std::map<std::string, double>>>
      groups;
  for (const auto& [label, fields] : points) {
    const std::size_t slash = label.rfind('/');
    if (slash == std::string::npos) continue;
    groups[label.substr(0, slash)][label.substr(slash + 1)] = fields;
  }
  const auto metric = [](const std::map<std::string, double>& fields,
                         const char* key) -> std::optional<double> {
    const auto it = fields.find(key);
    return it != fields.end() ? std::optional<double>(it->second) : std::nullopt;
  };
  std::size_t violations = 0;
  const auto violated = [&](const std::string& point, const char* what) {
    ++violations;
    std::printf("  VIOLATED at %s (%s)\n", point.c_str(), what);
  };
  for (const auto& [point, arms] : groups) {
    std::optional<double> base_failed, base_lost;
    if (const auto it = arms.find("baseline"); it != arms.end()) {
      base_failed = metric(it->second, "jobs_failed");
      base_lost = metric(it->second, "lost_node_seconds");
    }
    if (base_failed && *base_failed <= 0.0)
      violated(point, "baseline failed no jobs");
    std::optional<double> prev_lost;
    for (const char* arm : {"retry", "retry+ckpt", "+placement"}) {
      const auto it = arms.find(arm);
      if (it == arms.end()) continue;
      if (const auto failed = metric(it->second, "jobs_failed");
          failed && *failed != 0.0)
        violated(point, (std::string(arm) + " failed jobs").c_str());
      const auto lost = metric(it->second, "lost_node_seconds");
      if (lost && prev_lost && *lost >= *prev_lost)
        violated(point,
                 (std::string("lost node-s not decreasing at ") + arm).c_str());
      if (lost) prev_lost = lost;
    }
    if (prev_lost && base_lost && *prev_lost >= *base_lost)
      violated(point, "+placement lost no less than baseline");
  }
  if (violations == 0)
    std::printf("fault-tolerance invariants: OK (baseline fails, retry arms "
                "lose no jobs, lost node-s strictly decreases across arms at "
                "all %zu points)\n\n",
                groups.size());
  else
    std::printf("fault-tolerance invariants: VIOLATED %zu time(s) across %zu "
                "points\n\n",
                violations, groups.size());
}

void summarize_fault(const JsonValue& document) {
  const auto points = headline_points(document, kFaultFields);
  if (points.empty()) return;
  std::printf("fault-tolerance headline (per arm point)\n");
  Table table({"point", "completed", "failed", "fail rate", "lost node-s",
               "ckpt node-s", "goodput"});
  for (const auto& [label, fields] : points) {
    std::vector<std::string> row{label};
    for (const char* field : kFaultFields) {
      const auto it = fields.find(field);
      row.push_back(it != fields.end() ? format_double(it->second, 6) : "-");
    }
    table.add_row(std::move(row));
  }
  table.print();
  print_fault_verdict(points);
}

/// Diff counterpart: headline fields side by side, verdict per artifact.
void diff_fault(const std::vector<Artifact>& artifacts) {
  std::vector<std::string> header{"point :: field"};
  for (const Artifact& artifact : artifacts) header.push_back(artifact.label);
  const bool ratio = artifacts.size() == 2;
  if (ratio) header.push_back("ratio");

  std::map<std::string, std::vector<std::optional<double>>> rows;
  std::vector<std::string> order;
  for (std::size_t a = 0; a < artifacts.size(); ++a) {
    for (const auto& [label, fields] :
         headline_points(artifacts[a].document, kFaultFields)) {
      for (const char* field : kFaultFields) {
        const auto it = fields.find(field);
        if (it == fields.end()) continue;
        const std::string key = label + " :: " + field;
        auto [entry, inserted] = rows.try_emplace(key);
        if (inserted) order.push_back(key);
        entry->second.resize(artifacts.size());
        entry->second[a] = it->second;
      }
    }
  }
  if (rows.empty()) return;
  std::printf("fault-tolerance headline (per arm point)\n");
  Table table(header);
  for (const std::string& key : order) {
    auto& values = rows[key];
    values.resize(artifacts.size());
    std::vector<std::string> cells{key};
    for (const auto& value : values)
      cells.push_back(value ? format_double(*value, 6) : "-");
    if (ratio)
      cells.push_back(values[0] && values[1] && *values[0] != 0.0
                          ? format_double(*values[1] / *values[0], 4)
                          : "-");
    table.add_row(std::move(cells));
  }
  table.print();
  std::printf("\n");
  for (const Artifact& artifact : artifacts) {
    std::printf("%s: ", artifact.label.c_str());
    print_fault_verdict(headline_points(artifact.document, kFaultFields));
  }
}

void summarize_bench(const Artifact& artifact) {
  const JsonValue& document = artifact.document;
  std::printf("bench artifact: %s (schema %s%s)\n\n",
              member_string(document, "bench").c_str(),
              member_string(document, "schema").c_str(),
              document.find("smoke") && document.find("smoke")->is_bool() &&
                      document.find("smoke")->as_bool()
                  ? ", smoke"
                  : "");
  Table run({"run-level", "value"});
  for (const char* field : kBenchRunFields) {
    const auto value = bench_run_field(document, field);
    run.add_row({field, value ? format_double(*value, 6) : "-"});
  }
  run.print();
  std::printf("\n");
  if (is_ha_failover_bench(document)) summarize_failover(document);
  if (is_policy_suite_bench(document)) summarize_policy(document);
  if (is_fault_tolerance_bench(document)) summarize_fault(document);
  const auto means = bench_point_means(document);
  if (means.empty()) return;
  std::printf("point metric means\n");
  Table table({"point :: metric", "mean"});
  for (const auto& [key, mean] : means)
    table.add_row({key, format_double(mean, 6)});
  table.print();
  std::printf("\n");
}

/// Diff mode: one column per artifact; with exactly two artifacts a
/// last/first ratio column makes before/after perf comparisons one read
/// (events_per_sec ratio > 1 means the second run is faster).
void diff_bench(const std::vector<Artifact>& artifacts) {
  std::printf("bench comparison of %zu artifacts\n\n", artifacts.size());
  const bool ratio = artifacts.size() == 2;

  std::vector<std::string> header{"run-level"};
  for (const Artifact& artifact : artifacts) header.push_back(artifact.label);
  if (ratio) header.push_back("ratio");
  Table run(header);
  {
    std::vector<std::string> row{"bench"};
    for (const Artifact& artifact : artifacts)
      row.push_back(member_string(artifact.document, "bench"));
    if (ratio) row.push_back("-");
    run.add_row(std::move(row));
  }
  for (const char* field : kBenchRunFields) {
    std::vector<std::string> row{field};
    std::vector<std::optional<double>> values;
    for (const Artifact& artifact : artifacts) {
      values.push_back(bench_run_field(artifact.document, field));
      row.push_back(values.back() ? format_double(*values.back(), 6) : "-");
    }
    if (ratio)
      row.push_back(values[0] && values[1] && *values[0] != 0.0
                        ? format_double(*values[1] / *values[0], 4)
                        : "-");
    run.add_row(std::move(row));
  }
  run.print();
  std::printf("\n");

  if (std::all_of(artifacts.begin(), artifacts.end(),
                  [](const Artifact& artifact) {
                    return is_ha_failover_bench(artifact.document);
                  }))
    diff_failover(artifacts);
  if (std::all_of(artifacts.begin(), artifacts.end(),
                  [](const Artifact& artifact) {
                    return is_policy_suite_bench(artifact.document);
                  }))
    diff_policy(artifacts);
  if (std::all_of(artifacts.begin(), artifacts.end(),
                  [](const Artifact& artifact) {
                    return is_fault_tolerance_bench(artifact.document);
                  }))
    diff_fault(artifacts);

  // Union of "label :: metric" rows across all artifacts.
  std::map<std::string, std::vector<std::optional<double>>> rows;
  for (std::size_t a = 0; a < artifacts.size(); ++a) {
    for (const auto& [key, mean] : bench_point_means(artifacts[a].document)) {
      auto& row = rows[key];
      row.resize(artifacts.size());
      row[a] = mean;
    }
  }
  if (rows.empty()) return;
  std::vector<std::string> point_header{"point :: metric"};
  for (const Artifact& artifact : artifacts) point_header.push_back(artifact.label);
  if (ratio) point_header.push_back("ratio");
  std::printf("point metric means\n");
  Table table(point_header);
  for (auto& [key, values] : rows) {
    values.resize(artifacts.size());
    std::vector<std::string> cells{key};
    for (const auto& value : values)
      cells.push_back(value ? format_double(*value, 6) : "-");
    if (ratio)
      cells.push_back(values[0] && values[1] && *values[0] != 0.0
                          ? format_double(*values[1] / *values[0], 4)
                          : "-");
    table.add_row(std::move(cells));
  }
  table.print();
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args;
  args.add_flag("spans", "print only the trace-event summary");
  args.add_flag("metrics", "print only the metrics registry");
  args.add_option("cat", "restrict events to one category (comm, rm, sched...)");
  if (!args.parse(argc, argv)) {
    std::fprintf(stderr, "esprof: %s\n", args.error().c_str());
    return 2;
  }
  if (args.help_requested() || args.positional().empty()) {
    std::fputs(args.usage("esprof <trace.json> [more.json ...]",
                          "Summarize one telemetry trace/metrics artifact, or "
                          "merge several into a side-by-side comparison.")
                   .c_str(),
               stdout);
    return args.help_requested() ? 0 : 2;
  }

  if (args.positional().size() > 1) {
    std::vector<Artifact> artifacts;
    std::size_t bench_count = 0;
    for (const std::string& artifact_path : args.positional()) {
      auto artifact = load_artifact(artifact_path);
      if (!artifact) return 1;
      if (is_bench_artifact(artifact->document)) ++bench_count;
      artifacts.push_back(std::move(*artifact));
    }
    if (bench_count == artifacts.size()) {
      diff_bench(artifacts);
      return 0;
    }
    if (bench_count > 0) {
      std::fprintf(stderr,
                   "esprof: cannot mix bench artifacts with telemetry traces "
                   "in one comparison\n");
      return 2;
    }
    summarize_merged(artifacts);
    return 0;
  }

  const std::string path = args.positional()[0];
  const auto artifact = load_artifact(path);
  if (!artifact) return 1;
  const JsonValue& document = artifact->document;
  if (is_bench_artifact(document)) {
    summarize_bench(*artifact);
    return 0;
  }

  const bool only_spans = args.has_flag("spans");
  const bool only_metrics = args.has_flag("metrics");
  const std::string category = args.get_or("cat", "");

  // Accept both the combined artifact ({"traceEvents": ..., "metrics": ...})
  // and a bare metrics snapshot ({"counters": ...}).
  const JsonValue* events = document.find("traceEvents");
  const JsonValue* metrics = metrics_of(document);

  if (!events && !metrics) {
    std::fprintf(stderr,
                 "esprof: '%s' has neither \"traceEvents\" nor a metrics snapshot\n",
                 path.c_str());
    return 1;
  }
  const auto section_empty = [](const JsonValue* snapshot, const char* key) {
    const JsonValue* section = snapshot->find(key);
    return !section || !section->is_object() || section->members().empty();
  };
  const bool no_events = !events || !events->is_array() || events->items().empty();
  const bool no_metrics = !metrics || (section_empty(metrics, "counters") &&
                                       section_empty(metrics, "gauges") &&
                                       section_empty(metrics, "histograms"));
  if (no_events && no_metrics) {
    std::printf("empty artifact: no events or metrics were recorded\n");
    return 0;
  }
  if (events && events->is_array() && !only_metrics)
    summarize_events(*events, category);
  if (metrics && !only_spans) summarize_metrics(*metrics);
  if (const JsonValue* dropped = document.find("droppedEvents"))
    std::printf("warning: %.0f events were dropped at the trace-buffer cap\n",
                dropped->as_number());
  return 0;
}
