// Quickstart: bring up an ESLURM-managed cluster from a slurm.conf-style
// description, submit a handful of jobs, and inspect the result -- the
// simulated equivalent of sbatch + squeue + sinfo.
//
//   $ ./quickstart
#include <cstdio>

#include "core/experiment.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace eslurm;

int main() {
  // 1. Describe the deployment the way an administrator would.
  const auto config = core::Experiment::config_from_text(R"(
      ResourceManager=eslurm
      Nodes=512
      SatelliteNodes=2
      TreeWidth=50
      HorizonHours=3
      UseRuntimeEstimation=yes
  )");
  core::Experiment experiment(config);

  // 2. Submit a small batch of jobs (an sbatch burst at t=60s).
  std::vector<sched::Job> jobs;
  const struct {
    const char* user;
    const char* name;
    int nodes;
    int runtime_min;
    int limit_min;
  } batch[] = {
      {"alice", "cfd_solver", 128, 42, 120},
      {"bob", "bio_align", 16, 15, 60},
      {"alice", "cfd_solver", 128, 45, 120},
      {"carol", "em_field", 256, 30, 240},
      {"bob", "bio_align", 16, 14, 60},
      {"dave", "combustion", 64, 55, 90},
  };
  sched::JobId next_id = 1;
  for (const auto& item : batch) {
    sched::Job job;
    job.id = next_id++;
    job.user = item.user;
    job.name = item.name;
    job.nodes = item.nodes;
    job.cores = item.nodes * 12;
    job.submit_time = seconds(60) + seconds(5) * static_cast<std::int64_t>(job.id);
    job.actual_runtime = minutes(item.runtime_min);
    job.user_estimate = minutes(item.limit_min);
    jobs.push_back(std::move(job));
  }
  experiment.submit_trace(jobs);

  // 3. Run the simulated cluster for three hours.
  experiment.run();

  // 4. squeue-style accounting output.
  std::printf("=== job accounting (squeue -t all equivalent) ===\n");
  Table table({"JOBID", "USER", "NAME", "NODES", "STATE", "WAIT(s)", "RUN(s)"});
  for (const auto& job : jobs) {
    const sched::Job& final_state = experiment.manager().pool().get(job.id);
    table.add_row({std::to_string(final_state.id), final_state.user, final_state.name,
                   std::to_string(final_state.nodes),
                   sched::job_state_name(final_state.state),
                   format_double(to_seconds(final_state.wait_time()), 4),
                   format_double(to_seconds(final_state.observed_runtime()), 4)});
  }
  table.print();

  // 5. sinfo-style cluster summary.
  const auto report = experiment.report();
  std::printf("\n=== cluster summary ===\n");
  std::printf("compute nodes        : %d\n", experiment.manager().total_compute_nodes());
  std::printf("jobs finished        : %zu\n", report.jobs_finished);
  std::printf("system utilization   : %.1f%%\n", 100.0 * report.system_utilization);
  std::printf("avg wait             : %.1f s\n", report.avg_wait_seconds);
  std::printf("avg bounded slowdown : %.2f\n", report.avg_bounded_slowdown);
  std::printf("master RSS           : %.1f MB, vmem %.2f GB\n",
              experiment.manager().master_stats().rss_mb(),
              experiment.manager().master_stats().vmem_gb());
  const auto sats = experiment.eslurm()->satellite_reports();
  for (const auto& sat : sats)
    std::printf("satellite node %u     : %s, %llu tasks relayed\n", sat.node,
                rm::satellite_state_name(sat.state),
                static_cast<unsigned long long>(sat.tasks_received));
  return 0;
}
