// Failure storm: a 2048-node cluster takes a burst of node failures (the
// paper's production anecdote is a 600-node loss during a hardware
// upgrade) while an RM keeps broadcasting control messages.  The example
// compares the same broadcast with and without FP-Tree rearrangement and
// shows the monitoring pipeline in action.
//
//   $ ./failure_storm
#include <cstdio>
#include <numeric>

#include "comm/fp_tree.hpp"
#include "core/experiment.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace eslurm;

namespace {

comm::BroadcastResult run_broadcast(core::Experiment& experiment,
                                    comm::TreeBroadcaster& broadcaster,
                                    const std::vector<net::NodeId>& targets) {
  comm::BroadcastResult out;
  bool done = false;
  comm::BroadcastOptions opts;
  opts.tree_width = 16;
  broadcaster.broadcast(0, targets, opts, [&](const comm::BroadcastResult& r) {
    out = r;
    done = true;
  });
  // Advance in bounded steps so we do not also drain unrelated future
  // events (e.g. the burst's repairs hours from now).
  while (!done) experiment.engine().run_until(experiment.engine().now() + minutes(1));
  return out;
}

}  // namespace

int main() {
  core::ExperimentConfig config;
  config.rm = "eslurm";
  config.compute_nodes = 2048;
  config.satellite_count = 2;
  config.horizon = hours(4);
  config.enable_failures = true;
  config.failure_params.node_mtbf_hours = 4000.0;
  config.monitoring.hit_rate = 0.85;
  core::Experiment experiment(config);

  // A correlated failure wave 3 hours in: 300 nodes lost to maintenance,
  // still down when the horizon is reached (the paper's production story
  // was a 600+-node loss during a hardware upgrade).
  experiment.failures().schedule_burst(
      cluster::BurstEvent{.at = hours(3), .node_count = 300, .duration_hours = 6.0});

  // Let the cluster run (failures + monitoring active).
  experiment.run();

  std::printf("=== monitoring after 4 simulated hours ===\n");
  std::printf("failures injected : %llu\n",
              (unsigned long long)experiment.failures().injected_failures());
  std::printf("alerts raised     : %llu (%llu genuine, %llu false alarms)\n",
              (unsigned long long)experiment.monitoring().alerts_raised(),
              (unsigned long long)experiment.monitoring().genuine_alerts(),
              (unsigned long long)experiment.monitoring().false_alarms());
  std::printf("nodes down now    : %zu\n", experiment.cluster().failed_count());
  std::printf("currently flagged : %zu nodes\n\n",
              experiment.monitoring().predicted_count());

  // Broadcast to every compute node: plain tree vs FP-Tree, on the
  // *degraded* cluster (many targets are dead).
  const auto& deployment = experiment.manager().deployment();
  comm::TreeBroadcaster plain(experiment.network(), "plain-tree");
  comm::FpTreeBroadcaster fp(experiment.network(), experiment.monitoring(), "fp-tree");

  const auto plain_result = run_broadcast(experiment, plain, deployment.compute);
  const auto fp_result = run_broadcast(experiment, fp, deployment.compute);

  std::printf("=== broadcast to %zu nodes on the degraded cluster ===\n",
              deployment.compute.size());
  Table table({"structure", "time(s)", "delivered", "unreachable", "repairs"});
  table.add_row({"plain tree", format_double(to_seconds(plain_result.elapsed()), 4),
                 std::to_string(plain_result.delivered),
                 std::to_string(plain_result.unreachable),
                 std::to_string(plain_result.repairs)});
  table.add_row({"FP-Tree", format_double(to_seconds(fp_result.elapsed()), 4),
                 std::to_string(fp_result.delivered),
                 std::to_string(fp_result.unreachable),
                 std::to_string(fp_result.repairs)});
  table.print();

  const auto& stats = fp.cumulative_stats();
  std::printf("\nFP-Tree placed %zu of %zu predicted-failed nodes on leaves (%.1f%%)\n",
              stats.predicted_on_leaf, stats.predicted,
              100.0 * stats.leaf_placement_ratio());
  std::printf("speedup over plain tree: %.2fx\n",
              to_seconds(plain_result.elapsed()) /
                  std::max(1e-9, to_seconds(fp_result.elapsed())));
  return 0;
}
