// Head-to-head: replay the same day of workload through classic Slurm
// and through ESLURM on a 512-node cluster, then compare master-node
// resource usage and scheduling efficiency -- a miniature of the paper's
// Section VII evaluation.
//
//   $ ./rm_comparison
#include <cstdio>

#include "core/experiment.hpp"
#include "trace/generator.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace eslurm;

namespace {

struct Outcome {
  sched::SchedulingReport report;
  double cpu_minutes = 0.0;
  double rss_mb = 0.0;
  double vmem_gb = 0.0;
  double peak_sockets = 0.0;
  double avg_occupation_s = 0.0;
};

Outcome run(const std::string& rm, const std::vector<sched::Job>& jobs) {
  core::ExperimentConfig config;
  config.rm = rm;
  config.compute_nodes = 512;
  config.satellite_count = 2;
  config.horizon = hours(26);
  config.rm_config.use_runtime_estimation = (rm == "eslurm");
  core::Experiment experiment(config);
  experiment.submit_trace(jobs);
  experiment.run();

  Outcome out;
  out.report = experiment.manager().report(0, hours(24));
  const auto& stats = experiment.manager().master_stats();
  out.cpu_minutes = stats.cpu_seconds() / 60.0;
  out.rss_mb = stats.rss_mb();
  out.vmem_gb = stats.vmem_gb();
  out.peak_sockets = stats.socket_series().max_value();
  out.avg_occupation_s = experiment.manager().occupation_seconds().mean();
  return out;
}

}  // namespace

int main() {
  trace::WorkloadProfile profile = trace::tianhe2a_profile();
  profile.jobs_per_hour = 40;
  profile.max_nodes_per_job = 256;
  trace::TraceGenerator generator(profile);
  const auto jobs = generator.generate(hours(24));
  std::printf("replaying %zu jobs over 24 h on 512 nodes\n\n", jobs.size());

  const Outcome slurm = run("slurm", jobs);
  const Outcome eslurm = run("eslurm", jobs);

  Table table({"metric", "Slurm", "ESLURM"});
  auto row = [&](const char* metric, double a, double b, int precision = 4) {
    table.add_row({metric, format_double(a, precision), format_double(b, precision)});
  };
  row("master CPU time (min)", slurm.cpu_minutes, eslurm.cpu_minutes);
  row("master RSS (MB)", slurm.rss_mb, eslurm.rss_mb);
  row("master vmem (GB)", slurm.vmem_gb, eslurm.vmem_gb);
  row("peak concurrent sockets", slurm.peak_sockets, eslurm.peak_sockets);
  row("jobs finished", static_cast<double>(slurm.report.jobs_finished),
      static_cast<double>(eslurm.report.jobs_finished));
  row("system utilization (%)", 100 * slurm.report.system_utilization,
      100 * eslurm.report.system_utilization);
  row("avg wait (s)", slurm.report.avg_wait_seconds, eslurm.report.avg_wait_seconds);
  row("avg bounded slowdown", slurm.report.avg_bounded_slowdown,
      eslurm.report.avg_bounded_slowdown);
  row("avg job occupation (s)", slurm.avg_occupation_s, eslurm.avg_occupation_s);
  table.print();

  std::printf("\nESLURM keeps the master lean by pushing fan-out to satellites\n"
              "and packs the machine better through learned runtime estimates.\n");
  return 0;
}
