// Runtime prediction walkthrough: generate a Tianhe-style workload,
// replay it through the ESLURM estimation framework, and inspect how the
// model's estimates compare to what the users asked for.
//
//   $ ./runtime_prediction
#include <cstdio>

#include "predict/baselines.hpp"
#include "trace/generator.hpp"
#include "trace/statistics.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace eslurm;

int main() {
  // A month of Tianhe-2A-like workload.
  trace::WorkloadProfile profile = trace::tianhe2a_profile();
  profile.jobs_per_hour = 25;
  trace::TraceGenerator generator(profile);
  const auto jobs = generator.generate(days(30));
  std::printf("generated %zu jobs over 30 days\n\n", jobs.size());

  // How bad are the user estimates? (the Fig. 5a observation)
  const auto p_samples = trace::estimate_accuracy_samples(jobs);
  std::size_t over = 0;
  for (const double p : p_samples)
    if (p > 1.0) ++over;
  std::printf("user estimates overestimate %.1f%% of runtimes\n\n",
              100.0 * static_cast<double>(over) / p_samples.size());

  // Replay through the framework: predict at submission, learn at
  // completion, retrain on the model generator's cadence.
  predict::EstimatorConfig config;
  config.retrain_period = hours(4);
  predict::RuntimeEstimator estimator(config, Rng(7));
  predict::AccuracyTracker model_acc, user_acc;
  std::vector<std::pair<sched::Job, SimTime>> samples;  // (job, estimate)
  for (const auto& job : jobs) {
    estimator.maybe_retrain(job.submit_time);
    const auto estimate = estimator.estimate(job);
    const SimTime model_value = estimate.model_raw > 0 ? estimate.model_raw
                                                       : estimate.value;
    model_acc.add(model_value, job.actual_runtime);
    user_acc.add(job.user_estimate, job.actual_runtime);
    if (jobs.size() - job.id < 6) samples.emplace_back(job, model_value);
    estimator.record_completion(job);
  }

  std::printf("=== the last few predictions ===\n");
  Table table({"user", "app", "nodes", "actual(s)", "user est(s)", "model est(s)"});
  for (const auto& [job, estimate] : samples) {
    table.add_row({job.user, job.name, std::to_string(job.nodes),
                   format_double(to_seconds(job.actual_runtime), 4),
                   format_double(to_seconds(job.user_estimate), 4),
                   format_double(to_seconds(estimate), 4)});
  }
  table.print();

  std::printf("\n=== accuracy over the whole month (Eq. 4-5) ===\n");
  std::printf("user estimates : AEA %.3f, underestimation rate %.3f\n",
              user_acc.aea(), user_acc.underestimate_rate());
  std::printf("ESLURM model   : AEA %.3f, underestimation rate %.3f\n",
              model_acc.aea(), model_acc.underestimate_rate());
  std::printf("model generations trained: %llu (every %lld h, window %zu jobs, "
              "k=%zu clusters)\n",
              (unsigned long long)estimator.retrain_count(),
              (long long)(config.retrain_period / hours(1)),
              config.interest_window, estimator.cluster_count());
  return 0;
}
