file(REMOVE_RECURSE
  "CMakeFiles/esim.dir/esim.cpp.o"
  "CMakeFiles/esim.dir/esim.cpp.o.d"
  "esim"
  "esim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
