# Empty dependencies file for esim.
# This may be replaced when dependencies are built.
