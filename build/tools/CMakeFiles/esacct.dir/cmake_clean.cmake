file(REMOVE_RECURSE
  "CMakeFiles/esacct.dir/esacct.cpp.o"
  "CMakeFiles/esacct.dir/esacct.cpp.o.d"
  "esacct"
  "esacct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esacct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
