# Empty compiler generated dependencies file for esacct.
# This may be replaced when dependencies are built.
