# Empty compiler generated dependencies file for estrace.
# This may be replaced when dependencies are built.
