file(REMOVE_RECURSE
  "CMakeFiles/estrace.dir/estrace.cpp.o"
  "CMakeFiles/estrace.dir/estrace.cpp.o.d"
  "estrace"
  "estrace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/estrace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
