
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ml/kmeans_test.cpp" "tests/CMakeFiles/test_ml.dir/ml/kmeans_test.cpp.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/kmeans_test.cpp.o.d"
  "/root/repo/tests/ml/linear_tobit_test.cpp" "tests/CMakeFiles/test_ml.dir/ml/linear_tobit_test.cpp.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/linear_tobit_test.cpp.o.d"
  "/root/repo/tests/ml/scaler_test.cpp" "tests/CMakeFiles/test_ml.dir/ml/scaler_test.cpp.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/scaler_test.cpp.o.d"
  "/root/repo/tests/ml/svr_test.cpp" "tests/CMakeFiles/test_ml.dir/ml/svr_test.cpp.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/svr_test.cpp.o.d"
  "/root/repo/tests/ml/tree_forest_test.cpp" "tests/CMakeFiles/test_ml.dir/ml/tree_forest_test.cpp.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/tree_forest_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ml/CMakeFiles/eslurm_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/eslurm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
