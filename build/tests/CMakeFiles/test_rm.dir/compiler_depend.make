# Empty compiler generated dependencies file for test_rm.
# This may be replaced when dependencies are built.
