
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cluster/cluster_test.cpp" "tests/CMakeFiles/test_cluster.dir/cluster/cluster_test.cpp.o" "gcc" "tests/CMakeFiles/test_cluster.dir/cluster/cluster_test.cpp.o.d"
  "/root/repo/tests/cluster/failure_model_test.cpp" "tests/CMakeFiles/test_cluster.dir/cluster/failure_model_test.cpp.o" "gcc" "tests/CMakeFiles/test_cluster.dir/cluster/failure_model_test.cpp.o.d"
  "/root/repo/tests/cluster/history_predictor_test.cpp" "tests/CMakeFiles/test_cluster.dir/cluster/history_predictor_test.cpp.o" "gcc" "tests/CMakeFiles/test_cluster.dir/cluster/history_predictor_test.cpp.o.d"
  "/root/repo/tests/cluster/monitoring_test.cpp" "tests/CMakeFiles/test_cluster.dir/cluster/monitoring_test.cpp.o" "gcc" "tests/CMakeFiles/test_cluster.dir/cluster/monitoring_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/eslurm_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/eslurm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/eslurm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/eslurm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
