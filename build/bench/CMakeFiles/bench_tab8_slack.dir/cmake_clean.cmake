file(REMOVE_RECURSE
  "CMakeFiles/bench_tab8_slack.dir/bench_tab8_slack.cpp.o"
  "CMakeFiles/bench_tab8_slack.dir/bench_tab8_slack.cpp.o.d"
  "bench_tab8_slack"
  "bench_tab8_slack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab8_slack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
