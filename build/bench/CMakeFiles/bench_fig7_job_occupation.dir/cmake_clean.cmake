file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_job_occupation.dir/bench_fig7_job_occupation.cpp.o"
  "CMakeFiles/bench_fig7_job_occupation.dir/bench_fig7_job_occupation.cpp.o.d"
  "bench_fig7_job_occupation"
  "bench_fig7_job_occupation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_job_occupation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
