# Empty dependencies file for bench_fig7_master_resources.
# This may be replaced when dependencies are built.
