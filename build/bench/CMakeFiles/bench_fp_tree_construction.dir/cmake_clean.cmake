file(REMOVE_RECURSE
  "CMakeFiles/bench_fp_tree_construction.dir/bench_fp_tree_construction.cpp.o"
  "CMakeFiles/bench_fp_tree_construction.dir/bench_fp_tree_construction.cpp.o.d"
  "bench_fp_tree_construction"
  "bench_fp_tree_construction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fp_tree_construction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
