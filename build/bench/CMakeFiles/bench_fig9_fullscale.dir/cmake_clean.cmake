file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_fullscale.dir/bench_fig9_fullscale.cpp.o"
  "CMakeFiles/bench_fig9_fullscale.dir/bench_fig9_fullscale.cpp.o.d"
  "bench_fig9_fullscale"
  "bench_fig9_fullscale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_fullscale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
