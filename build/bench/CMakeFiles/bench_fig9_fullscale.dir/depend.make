# Empty dependencies file for bench_fig9_fullscale.
# This may be replaced when dependencies are built.
