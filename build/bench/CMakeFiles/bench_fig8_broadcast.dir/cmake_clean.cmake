file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_broadcast.dir/bench_fig8_broadcast.cpp.o"
  "CMakeFiles/bench_fig8_broadcast.dir/bench_fig8_broadcast.cpp.o.d"
  "bench_fig8_broadcast"
  "bench_fig8_broadcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_broadcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
