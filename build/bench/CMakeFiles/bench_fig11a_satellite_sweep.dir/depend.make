# Empty dependencies file for bench_fig11a_satellite_sweep.
# This may be replaced when dependencies are built.
