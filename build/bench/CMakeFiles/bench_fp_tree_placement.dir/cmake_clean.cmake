file(REMOVE_RECURSE
  "CMakeFiles/bench_fp_tree_placement.dir/bench_fp_tree_placement.cpp.o"
  "CMakeFiles/bench_fp_tree_placement.dir/bench_fp_tree_placement.cpp.o.d"
  "bench_fp_tree_placement"
  "bench_fp_tree_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fp_tree_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
