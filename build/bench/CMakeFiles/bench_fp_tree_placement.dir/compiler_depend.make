# Empty compiler generated dependencies file for bench_fp_tree_placement.
# This may be replaced when dependencies are built.
