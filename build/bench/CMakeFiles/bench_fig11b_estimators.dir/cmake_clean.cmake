file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11b_estimators.dir/bench_fig11b_estimators.cpp.o"
  "CMakeFiles/bench_fig11b_estimators.dir/bench_fig11b_estimators.cpp.o.d"
  "bench_fig11b_estimators"
  "bench_fig11b_estimators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11b_estimators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
