# Empty dependencies file for bench_fig11b_estimators.
# This may be replaced when dependencies are built.
