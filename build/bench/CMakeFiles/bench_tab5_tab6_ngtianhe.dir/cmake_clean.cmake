file(REMOVE_RECURSE
  "CMakeFiles/bench_tab5_tab6_ngtianhe.dir/bench_tab5_tab6_ngtianhe.cpp.o"
  "CMakeFiles/bench_tab5_tab6_ngtianhe.dir/bench_tab5_tab6_ngtianhe.cpp.o.d"
  "bench_tab5_tab6_ngtianhe"
  "bench_tab5_tab6_ngtianhe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab5_tab6_ngtianhe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
