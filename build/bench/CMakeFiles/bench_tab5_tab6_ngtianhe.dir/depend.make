# Empty dependencies file for bench_tab5_tab6_ngtianhe.
# This may be replaced when dependencies are built.
