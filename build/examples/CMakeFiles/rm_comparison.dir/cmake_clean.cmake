file(REMOVE_RECURSE
  "CMakeFiles/rm_comparison.dir/rm_comparison.cpp.o"
  "CMakeFiles/rm_comparison.dir/rm_comparison.cpp.o.d"
  "rm_comparison"
  "rm_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rm_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
