# Empty dependencies file for rm_comparison.
# This may be replaced when dependencies are built.
