
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/rm_comparison.cpp" "examples/CMakeFiles/rm_comparison.dir/rm_comparison.cpp.o" "gcc" "examples/CMakeFiles/rm_comparison.dir/rm_comparison.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/eslurm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rm/CMakeFiles/eslurm_rm.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/eslurm_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/predict/CMakeFiles/eslurm_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/eslurm_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/eslurm_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/eslurm_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/eslurm_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/eslurm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/eslurm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/eslurm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
