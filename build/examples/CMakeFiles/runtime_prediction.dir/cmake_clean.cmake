file(REMOVE_RECURSE
  "CMakeFiles/runtime_prediction.dir/runtime_prediction.cpp.o"
  "CMakeFiles/runtime_prediction.dir/runtime_prediction.cpp.o.d"
  "runtime_prediction"
  "runtime_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
