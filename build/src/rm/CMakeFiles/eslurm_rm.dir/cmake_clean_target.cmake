file(REMOVE_RECURSE
  "libeslurm_rm.a"
)
