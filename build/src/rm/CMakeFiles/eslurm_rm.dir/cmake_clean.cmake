file(REMOVE_RECURSE
  "CMakeFiles/eslurm_rm.dir/accounting.cpp.o"
  "CMakeFiles/eslurm_rm.dir/accounting.cpp.o.d"
  "CMakeFiles/eslurm_rm.dir/accounting_storage.cpp.o"
  "CMakeFiles/eslurm_rm.dir/accounting_storage.cpp.o.d"
  "CMakeFiles/eslurm_rm.dir/centralized_rm.cpp.o"
  "CMakeFiles/eslurm_rm.dir/centralized_rm.cpp.o.d"
  "CMakeFiles/eslurm_rm.dir/eslurm_rm.cpp.o"
  "CMakeFiles/eslurm_rm.dir/eslurm_rm.cpp.o.d"
  "CMakeFiles/eslurm_rm.dir/profiles.cpp.o"
  "CMakeFiles/eslurm_rm.dir/profiles.cpp.o.d"
  "CMakeFiles/eslurm_rm.dir/resource_manager.cpp.o"
  "CMakeFiles/eslurm_rm.dir/resource_manager.cpp.o.d"
  "CMakeFiles/eslurm_rm.dir/satellite.cpp.o"
  "CMakeFiles/eslurm_rm.dir/satellite.cpp.o.d"
  "libeslurm_rm.a"
  "libeslurm_rm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eslurm_rm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
