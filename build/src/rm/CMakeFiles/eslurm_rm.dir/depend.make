# Empty dependencies file for eslurm_rm.
# This may be replaced when dependencies are built.
