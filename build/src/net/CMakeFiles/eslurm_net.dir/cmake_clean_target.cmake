file(REMOVE_RECURSE
  "libeslurm_net.a"
)
