# Empty compiler generated dependencies file for eslurm_net.
# This may be replaced when dependencies are built.
