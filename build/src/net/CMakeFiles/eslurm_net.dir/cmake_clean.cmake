file(REMOVE_RECURSE
  "CMakeFiles/eslurm_net.dir/network.cpp.o"
  "CMakeFiles/eslurm_net.dir/network.cpp.o.d"
  "CMakeFiles/eslurm_net.dir/topology.cpp.o"
  "CMakeFiles/eslurm_net.dir/topology.cpp.o.d"
  "libeslurm_net.a"
  "libeslurm_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eslurm_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
