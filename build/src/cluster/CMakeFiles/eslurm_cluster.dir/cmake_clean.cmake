file(REMOVE_RECURSE
  "CMakeFiles/eslurm_cluster.dir/cluster.cpp.o"
  "CMakeFiles/eslurm_cluster.dir/cluster.cpp.o.d"
  "CMakeFiles/eslurm_cluster.dir/failure_model.cpp.o"
  "CMakeFiles/eslurm_cluster.dir/failure_model.cpp.o.d"
  "CMakeFiles/eslurm_cluster.dir/history_predictor.cpp.o"
  "CMakeFiles/eslurm_cluster.dir/history_predictor.cpp.o.d"
  "CMakeFiles/eslurm_cluster.dir/monitoring.cpp.o"
  "CMakeFiles/eslurm_cluster.dir/monitoring.cpp.o.d"
  "libeslurm_cluster.a"
  "libeslurm_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eslurm_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
