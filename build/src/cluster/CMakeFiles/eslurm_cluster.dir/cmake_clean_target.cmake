file(REMOVE_RECURSE
  "libeslurm_cluster.a"
)
