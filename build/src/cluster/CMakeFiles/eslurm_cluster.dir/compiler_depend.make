# Empty compiler generated dependencies file for eslurm_cluster.
# This may be replaced when dependencies are built.
