file(REMOVE_RECURSE
  "libeslurm_trace.a"
)
