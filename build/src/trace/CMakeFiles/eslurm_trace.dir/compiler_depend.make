# Empty compiler generated dependencies file for eslurm_trace.
# This may be replaced when dependencies are built.
