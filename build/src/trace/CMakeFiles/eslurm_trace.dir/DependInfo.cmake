
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/generator.cpp" "src/trace/CMakeFiles/eslurm_trace.dir/generator.cpp.o" "gcc" "src/trace/CMakeFiles/eslurm_trace.dir/generator.cpp.o.d"
  "/root/repo/src/trace/statistics.cpp" "src/trace/CMakeFiles/eslurm_trace.dir/statistics.cpp.o" "gcc" "src/trace/CMakeFiles/eslurm_trace.dir/statistics.cpp.o.d"
  "/root/repo/src/trace/swf.cpp" "src/trace/CMakeFiles/eslurm_trace.dir/swf.cpp.o" "gcc" "src/trace/CMakeFiles/eslurm_trace.dir/swf.cpp.o.d"
  "/root/repo/src/trace/trace_io.cpp" "src/trace/CMakeFiles/eslurm_trace.dir/trace_io.cpp.o" "gcc" "src/trace/CMakeFiles/eslurm_trace.dir/trace_io.cpp.o.d"
  "/root/repo/src/trace/workload.cpp" "src/trace/CMakeFiles/eslurm_trace.dir/workload.cpp.o" "gcc" "src/trace/CMakeFiles/eslurm_trace.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sched/CMakeFiles/eslurm_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/eslurm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
