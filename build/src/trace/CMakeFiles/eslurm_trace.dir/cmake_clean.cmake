file(REMOVE_RECURSE
  "CMakeFiles/eslurm_trace.dir/generator.cpp.o"
  "CMakeFiles/eslurm_trace.dir/generator.cpp.o.d"
  "CMakeFiles/eslurm_trace.dir/statistics.cpp.o"
  "CMakeFiles/eslurm_trace.dir/statistics.cpp.o.d"
  "CMakeFiles/eslurm_trace.dir/swf.cpp.o"
  "CMakeFiles/eslurm_trace.dir/swf.cpp.o.d"
  "CMakeFiles/eslurm_trace.dir/trace_io.cpp.o"
  "CMakeFiles/eslurm_trace.dir/trace_io.cpp.o.d"
  "CMakeFiles/eslurm_trace.dir/workload.cpp.o"
  "CMakeFiles/eslurm_trace.dir/workload.cpp.o.d"
  "libeslurm_trace.a"
  "libeslurm_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eslurm_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
