file(REMOVE_RECURSE
  "CMakeFiles/eslurm_ml.dir/dataset.cpp.o"
  "CMakeFiles/eslurm_ml.dir/dataset.cpp.o.d"
  "CMakeFiles/eslurm_ml.dir/forest.cpp.o"
  "CMakeFiles/eslurm_ml.dir/forest.cpp.o.d"
  "CMakeFiles/eslurm_ml.dir/kmeans.cpp.o"
  "CMakeFiles/eslurm_ml.dir/kmeans.cpp.o.d"
  "CMakeFiles/eslurm_ml.dir/linear.cpp.o"
  "CMakeFiles/eslurm_ml.dir/linear.cpp.o.d"
  "CMakeFiles/eslurm_ml.dir/metrics.cpp.o"
  "CMakeFiles/eslurm_ml.dir/metrics.cpp.o.d"
  "CMakeFiles/eslurm_ml.dir/scaler.cpp.o"
  "CMakeFiles/eslurm_ml.dir/scaler.cpp.o.d"
  "CMakeFiles/eslurm_ml.dir/svr.cpp.o"
  "CMakeFiles/eslurm_ml.dir/svr.cpp.o.d"
  "CMakeFiles/eslurm_ml.dir/tobit.cpp.o"
  "CMakeFiles/eslurm_ml.dir/tobit.cpp.o.d"
  "CMakeFiles/eslurm_ml.dir/tree.cpp.o"
  "CMakeFiles/eslurm_ml.dir/tree.cpp.o.d"
  "libeslurm_ml.a"
  "libeslurm_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eslurm_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
