# Empty dependencies file for eslurm_ml.
# This may be replaced when dependencies are built.
