
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/dataset.cpp" "src/ml/CMakeFiles/eslurm_ml.dir/dataset.cpp.o" "gcc" "src/ml/CMakeFiles/eslurm_ml.dir/dataset.cpp.o.d"
  "/root/repo/src/ml/forest.cpp" "src/ml/CMakeFiles/eslurm_ml.dir/forest.cpp.o" "gcc" "src/ml/CMakeFiles/eslurm_ml.dir/forest.cpp.o.d"
  "/root/repo/src/ml/kmeans.cpp" "src/ml/CMakeFiles/eslurm_ml.dir/kmeans.cpp.o" "gcc" "src/ml/CMakeFiles/eslurm_ml.dir/kmeans.cpp.o.d"
  "/root/repo/src/ml/linear.cpp" "src/ml/CMakeFiles/eslurm_ml.dir/linear.cpp.o" "gcc" "src/ml/CMakeFiles/eslurm_ml.dir/linear.cpp.o.d"
  "/root/repo/src/ml/metrics.cpp" "src/ml/CMakeFiles/eslurm_ml.dir/metrics.cpp.o" "gcc" "src/ml/CMakeFiles/eslurm_ml.dir/metrics.cpp.o.d"
  "/root/repo/src/ml/scaler.cpp" "src/ml/CMakeFiles/eslurm_ml.dir/scaler.cpp.o" "gcc" "src/ml/CMakeFiles/eslurm_ml.dir/scaler.cpp.o.d"
  "/root/repo/src/ml/svr.cpp" "src/ml/CMakeFiles/eslurm_ml.dir/svr.cpp.o" "gcc" "src/ml/CMakeFiles/eslurm_ml.dir/svr.cpp.o.d"
  "/root/repo/src/ml/tobit.cpp" "src/ml/CMakeFiles/eslurm_ml.dir/tobit.cpp.o" "gcc" "src/ml/CMakeFiles/eslurm_ml.dir/tobit.cpp.o.d"
  "/root/repo/src/ml/tree.cpp" "src/ml/CMakeFiles/eslurm_ml.dir/tree.cpp.o" "gcc" "src/ml/CMakeFiles/eslurm_ml.dir/tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/eslurm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
