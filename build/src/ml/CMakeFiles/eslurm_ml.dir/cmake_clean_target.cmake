file(REMOVE_RECURSE
  "libeslurm_ml.a"
)
