file(REMOVE_RECURSE
  "CMakeFiles/eslurm_sim.dir/engine.cpp.o"
  "CMakeFiles/eslurm_sim.dir/engine.cpp.o.d"
  "libeslurm_sim.a"
  "libeslurm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eslurm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
