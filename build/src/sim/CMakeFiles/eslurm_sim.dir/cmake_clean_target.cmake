file(REMOVE_RECURSE
  "libeslurm_sim.a"
)
