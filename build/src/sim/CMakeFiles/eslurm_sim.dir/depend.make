# Empty dependencies file for eslurm_sim.
# This may be replaced when dependencies are built.
