file(REMOVE_RECURSE
  "CMakeFiles/eslurm_util.dir/args.cpp.o"
  "CMakeFiles/eslurm_util.dir/args.cpp.o.d"
  "CMakeFiles/eslurm_util.dir/config.cpp.o"
  "CMakeFiles/eslurm_util.dir/config.cpp.o.d"
  "CMakeFiles/eslurm_util.dir/hostlist.cpp.o"
  "CMakeFiles/eslurm_util.dir/hostlist.cpp.o.d"
  "CMakeFiles/eslurm_util.dir/log.cpp.o"
  "CMakeFiles/eslurm_util.dir/log.cpp.o.d"
  "CMakeFiles/eslurm_util.dir/rng.cpp.o"
  "CMakeFiles/eslurm_util.dir/rng.cpp.o.d"
  "CMakeFiles/eslurm_util.dir/stats.cpp.o"
  "CMakeFiles/eslurm_util.dir/stats.cpp.o.d"
  "CMakeFiles/eslurm_util.dir/strings.cpp.o"
  "CMakeFiles/eslurm_util.dir/strings.cpp.o.d"
  "CMakeFiles/eslurm_util.dir/table.cpp.o"
  "CMakeFiles/eslurm_util.dir/table.cpp.o.d"
  "libeslurm_util.a"
  "libeslurm_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eslurm_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
