file(REMOVE_RECURSE
  "libeslurm_util.a"
)
