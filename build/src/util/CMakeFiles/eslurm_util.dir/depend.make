# Empty dependencies file for eslurm_util.
# This may be replaced when dependencies are built.
