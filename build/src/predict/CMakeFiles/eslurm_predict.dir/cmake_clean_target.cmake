file(REMOVE_RECURSE
  "libeslurm_predict.a"
)
