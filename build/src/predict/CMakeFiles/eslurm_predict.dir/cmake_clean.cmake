file(REMOVE_RECURSE
  "CMakeFiles/eslurm_predict.dir/accuracy.cpp.o"
  "CMakeFiles/eslurm_predict.dir/accuracy.cpp.o.d"
  "CMakeFiles/eslurm_predict.dir/baselines.cpp.o"
  "CMakeFiles/eslurm_predict.dir/baselines.cpp.o.d"
  "CMakeFiles/eslurm_predict.dir/estimator.cpp.o"
  "CMakeFiles/eslurm_predict.dir/estimator.cpp.o.d"
  "CMakeFiles/eslurm_predict.dir/features.cpp.o"
  "CMakeFiles/eslurm_predict.dir/features.cpp.o.d"
  "libeslurm_predict.a"
  "libeslurm_predict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eslurm_predict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
