# Empty compiler generated dependencies file for eslurm_predict.
# This may be replaced when dependencies are built.
