
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/predict/accuracy.cpp" "src/predict/CMakeFiles/eslurm_predict.dir/accuracy.cpp.o" "gcc" "src/predict/CMakeFiles/eslurm_predict.dir/accuracy.cpp.o.d"
  "/root/repo/src/predict/baselines.cpp" "src/predict/CMakeFiles/eslurm_predict.dir/baselines.cpp.o" "gcc" "src/predict/CMakeFiles/eslurm_predict.dir/baselines.cpp.o.d"
  "/root/repo/src/predict/estimator.cpp" "src/predict/CMakeFiles/eslurm_predict.dir/estimator.cpp.o" "gcc" "src/predict/CMakeFiles/eslurm_predict.dir/estimator.cpp.o.d"
  "/root/repo/src/predict/features.cpp" "src/predict/CMakeFiles/eslurm_predict.dir/features.cpp.o" "gcc" "src/predict/CMakeFiles/eslurm_predict.dir/features.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ml/CMakeFiles/eslurm_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/eslurm_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/eslurm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
