# Empty compiler generated dependencies file for eslurm_core.
# This may be replaced when dependencies are built.
