file(REMOVE_RECURSE
  "libeslurm_core.a"
)
