file(REMOVE_RECURSE
  "CMakeFiles/eslurm_core.dir/experiment.cpp.o"
  "CMakeFiles/eslurm_core.dir/experiment.cpp.o.d"
  "libeslurm_core.a"
  "libeslurm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eslurm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
