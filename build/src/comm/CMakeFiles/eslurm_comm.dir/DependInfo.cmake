
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/comm/broadcaster.cpp" "src/comm/CMakeFiles/eslurm_comm.dir/broadcaster.cpp.o" "gcc" "src/comm/CMakeFiles/eslurm_comm.dir/broadcaster.cpp.o.d"
  "/root/repo/src/comm/fp_tree.cpp" "src/comm/CMakeFiles/eslurm_comm.dir/fp_tree.cpp.o" "gcc" "src/comm/CMakeFiles/eslurm_comm.dir/fp_tree.cpp.o.d"
  "/root/repo/src/comm/ring.cpp" "src/comm/CMakeFiles/eslurm_comm.dir/ring.cpp.o" "gcc" "src/comm/CMakeFiles/eslurm_comm.dir/ring.cpp.o.d"
  "/root/repo/src/comm/shared_memory.cpp" "src/comm/CMakeFiles/eslurm_comm.dir/shared_memory.cpp.o" "gcc" "src/comm/CMakeFiles/eslurm_comm.dir/shared_memory.cpp.o.d"
  "/root/repo/src/comm/star.cpp" "src/comm/CMakeFiles/eslurm_comm.dir/star.cpp.o" "gcc" "src/comm/CMakeFiles/eslurm_comm.dir/star.cpp.o.d"
  "/root/repo/src/comm/topology_aware.cpp" "src/comm/CMakeFiles/eslurm_comm.dir/topology_aware.cpp.o" "gcc" "src/comm/CMakeFiles/eslurm_comm.dir/topology_aware.cpp.o.d"
  "/root/repo/src/comm/tree.cpp" "src/comm/CMakeFiles/eslurm_comm.dir/tree.cpp.o" "gcc" "src/comm/CMakeFiles/eslurm_comm.dir/tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/eslurm_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/eslurm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/eslurm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/eslurm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
