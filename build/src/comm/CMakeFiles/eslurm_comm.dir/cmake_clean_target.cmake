file(REMOVE_RECURSE
  "libeslurm_comm.a"
)
