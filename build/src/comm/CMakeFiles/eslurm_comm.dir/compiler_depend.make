# Empty compiler generated dependencies file for eslurm_comm.
# This may be replaced when dependencies are built.
