file(REMOVE_RECURSE
  "CMakeFiles/eslurm_comm.dir/broadcaster.cpp.o"
  "CMakeFiles/eslurm_comm.dir/broadcaster.cpp.o.d"
  "CMakeFiles/eslurm_comm.dir/fp_tree.cpp.o"
  "CMakeFiles/eslurm_comm.dir/fp_tree.cpp.o.d"
  "CMakeFiles/eslurm_comm.dir/ring.cpp.o"
  "CMakeFiles/eslurm_comm.dir/ring.cpp.o.d"
  "CMakeFiles/eslurm_comm.dir/shared_memory.cpp.o"
  "CMakeFiles/eslurm_comm.dir/shared_memory.cpp.o.d"
  "CMakeFiles/eslurm_comm.dir/star.cpp.o"
  "CMakeFiles/eslurm_comm.dir/star.cpp.o.d"
  "CMakeFiles/eslurm_comm.dir/topology_aware.cpp.o"
  "CMakeFiles/eslurm_comm.dir/topology_aware.cpp.o.d"
  "CMakeFiles/eslurm_comm.dir/tree.cpp.o"
  "CMakeFiles/eslurm_comm.dir/tree.cpp.o.d"
  "libeslurm_comm.a"
  "libeslurm_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eslurm_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
