file(REMOVE_RECURSE
  "libeslurm_sched.a"
)
