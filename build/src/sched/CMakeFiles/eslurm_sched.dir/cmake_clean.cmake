file(REMOVE_RECURSE
  "CMakeFiles/eslurm_sched.dir/job.cpp.o"
  "CMakeFiles/eslurm_sched.dir/job.cpp.o.d"
  "CMakeFiles/eslurm_sched.dir/job_pool.cpp.o"
  "CMakeFiles/eslurm_sched.dir/job_pool.cpp.o.d"
  "CMakeFiles/eslurm_sched.dir/metrics.cpp.o"
  "CMakeFiles/eslurm_sched.dir/metrics.cpp.o.d"
  "CMakeFiles/eslurm_sched.dir/partition.cpp.o"
  "CMakeFiles/eslurm_sched.dir/partition.cpp.o.d"
  "CMakeFiles/eslurm_sched.dir/priority.cpp.o"
  "CMakeFiles/eslurm_sched.dir/priority.cpp.o.d"
  "CMakeFiles/eslurm_sched.dir/priority_scheduler.cpp.o"
  "CMakeFiles/eslurm_sched.dir/priority_scheduler.cpp.o.d"
  "CMakeFiles/eslurm_sched.dir/scheduler.cpp.o"
  "CMakeFiles/eslurm_sched.dir/scheduler.cpp.o.d"
  "libeslurm_sched.a"
  "libeslurm_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eslurm_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
