# Empty dependencies file for eslurm_sched.
# This may be replaced when dependencies are built.
