
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/job.cpp" "src/sched/CMakeFiles/eslurm_sched.dir/job.cpp.o" "gcc" "src/sched/CMakeFiles/eslurm_sched.dir/job.cpp.o.d"
  "/root/repo/src/sched/job_pool.cpp" "src/sched/CMakeFiles/eslurm_sched.dir/job_pool.cpp.o" "gcc" "src/sched/CMakeFiles/eslurm_sched.dir/job_pool.cpp.o.d"
  "/root/repo/src/sched/metrics.cpp" "src/sched/CMakeFiles/eslurm_sched.dir/metrics.cpp.o" "gcc" "src/sched/CMakeFiles/eslurm_sched.dir/metrics.cpp.o.d"
  "/root/repo/src/sched/partition.cpp" "src/sched/CMakeFiles/eslurm_sched.dir/partition.cpp.o" "gcc" "src/sched/CMakeFiles/eslurm_sched.dir/partition.cpp.o.d"
  "/root/repo/src/sched/priority.cpp" "src/sched/CMakeFiles/eslurm_sched.dir/priority.cpp.o" "gcc" "src/sched/CMakeFiles/eslurm_sched.dir/priority.cpp.o.d"
  "/root/repo/src/sched/priority_scheduler.cpp" "src/sched/CMakeFiles/eslurm_sched.dir/priority_scheduler.cpp.o" "gcc" "src/sched/CMakeFiles/eslurm_sched.dir/priority_scheduler.cpp.o.d"
  "/root/repo/src/sched/scheduler.cpp" "src/sched/CMakeFiles/eslurm_sched.dir/scheduler.cpp.o" "gcc" "src/sched/CMakeFiles/eslurm_sched.dir/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/eslurm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
